"""Durable on-disk task queue with lease-based, crash-safe work claims.

The process-pool campaign engine is single-host by construction: its
work items live in an executor's in-memory queue and die with the
parent.  This module is the second :class:`~repro.campaign.scheduler`
backend — a spool directory that makes *campaign completion a
durability property*: every work item, lease and completion is an
append-only, CRC-framed, fsynced event, so N independent ``repro
worker`` processes can drain one sharded campaign and any of them (or
the coordinator itself) can be SIGKILLed at any instant without losing
or double-counting a run.

**Spool layout** (one directory per campaign queue)::

    <dir>/events.spool     append-only CRC-framed JSON events
    <dir>/queue.lock       flock serializing mutating appends
    <dir>/workers/<id>.hb  per-worker heartbeat files (atomic replace)

**Event log.**  Every line reuses the v1 checkpoint framing
(:func:`~repro.resilience.checkpoint.frame_line`): ``<crc32:8 hex>
<json>``.  The first event is a header carrying the campaign identity
hash — opening a spool whose identity names a different campaign
raises :class:`~repro.resilience.checkpoint.CheckpointMismatchError`
instead of silently merging two campaigns.  Then, in any order::

    {"ev": "submit",    "seq": n, "key": [...], "payload": "..."}
    {"ev": "close",     "total": N}
    {"ev": "claim",     "seq": n, "worker": w, "token": t, "deadline": d}
    {"ev": "heartbeat", "seq": n, "token": t, "deadline": d}
    {"ev": "expire",    "seq": n, "token": t}
    {"ev": "complete",  "seq": n, "token": t, "payload": "..."}

**Lease state machine** (:class:`LeaseState`) is a pure replay of that
log; every process — coordinator and workers alike — holds its own
instance and catches up incrementally before acting.  The rules that
make work stealing crash-safe:

* A *claim* takes the lowest-``seq`` submitted, unfinished, unleased
  task and stamps it with a **fencing token** — ``task.token + 1``,
  strictly monotonic per task — plus a **monotonic-clock deadline**
  (``CLOCK_MONOTONIC`` is system-wide on one host, so deadlines written
  by one process are comparable in another; cross-host skew can only
  make a steal *early*, never unsafe, because of the fencing check).
* A *heartbeat* extends the deadline iff the token is still current.
* An *expire* requeues a lease whose deadline passed; whoever observes
  the overdue lease first (a worker wanting work, or the coordinator's
  poll loop) appends it.  Replay is idempotent: a second expire for the
  same token is a no-op.
* A re-*claim* of a requeued task by a *different* worker is a
  **steal**; the original holder's token is now stale, so even if that
  worker is merely slow rather than dead, its late ``heartbeat`` /
  ``complete`` events are **fenced off** (ignored on replay) — a run
  is never completed twice.
* A *complete* is recorded at most once per task; duplicates and
  fenced completions are counted (:class:`QueueStats`) but ignored.

**Durability.**  Mutating appends happen under an ``flock`` (claims
are read-modify-append, so they must serialize), are flushed and
fsynced, and creating the spool fsyncs the directory
(:func:`~repro.resilience.checkpoint.fsync_directory`).  A writer
killed mid-append leaves a torn tail line; the next writer repairs the
framing by prefixing a newline, and replay skips the CRC-invalid
fragment — the lost event degrades to "never happened", which every
event kind tolerates (a lost claim re-claims, a lost complete re-runs
deterministically).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.obs import get_instrumentation
from repro.resilience.checkpoint import (
    CheckpointMismatchError,
    frame_line,
    fsync_directory,
    unframe_line,
)

logger = logging.getLogger(__name__)

__all__ = [
    "Claim",
    "DurableTaskQueue",
    "LeaseState",
    "QueueStats",
    "QueueTransport",
    "TaskRecord",
    "TaskQueueError",
    "WorkerHeartbeat",
    "enrich_disposition",
]

#: The spool format this writer produces (shares the checkpoint lineage).
QUEUE_VERSION = 1

#: How long past its ttl a worker heartbeat file still counts as live.
_HEARTBEAT_GRACE = 2.0


class TaskQueueError(RuntimeError):
    """The spool is structurally unusable (not: corrupt lines, which
    are skipped) — e.g. a submit re-used a seq for a different key."""


# ----------------------------------------------------------------------
# Pure lease state machine (replay of the event log)
# ----------------------------------------------------------------------


@dataclass
class TaskRecord:
    """One task's replayed state."""

    seq: int
    key: tuple
    payload: object = None  # opaque submit payload (or a disk ref)
    done: bool = False
    outcome: object = None  # opaque completion payload (or a disk ref)
    worker: str | None = None  # current / last lease holder
    token: int = 0  # fencing token of the current / last lease
    deadline: float | None = None  # monotonic deadline of an active lease
    active: bool = False  # a lease is currently held
    requeued_from: str | None = None  # holder of the lease that expired

    def expired(self, now: float) -> bool:
        return self.active and self.deadline is not None \
            and now > self.deadline


@dataclass
class QueueStats:
    """Replay-derived health numbers (feed the ``repro.obs`` gauges)."""

    submitted: int = 0
    completed: int = 0
    expired: int = 0  # leases_expired_total
    stolen: int = 0  # runs_stolen_total
    fenced: int = 0  # stale-token heartbeats/completes ignored
    invalid: int = 0  # structurally invalid events skipped on replay


class LeaseState:
    """In-memory lease state: a pure, deterministic replay of events.

    ``apply`` returns a *disposition* string — ``"submit"``,
    ``"close"``, ``"claim"``, ``"steal"``, ``"heartbeat"``,
    ``"expire"``, ``"complete"``, ``"fenced"``, ``"noop"`` or
    ``"invalid"`` — so observers (the coordinator's counter/breaker
    routing, the property tests) can react to each event exactly once,
    in log order, without re-deriving it.
    """

    def __init__(self) -> None:
        self.tasks: dict[int, TaskRecord] = {}
        self.identity: str | None = None
        self.version: int = 0
        self.default_lease_s: float | None = None
        self.closed: bool = False
        self.total: int | None = None
        self.stats = QueueStats()

    # -- queries --------------------------------------------------------

    @property
    def done_count(self) -> int:
        return self.stats.completed

    def depth(self) -> int:
        """Tasks not yet completed (pending + leased)."""
        return len(self.tasks) - self.stats.completed

    def active_leases(self, now: float) -> int:
        return sum(1 for task in self.tasks.values()
                   if task.active and not task.expired(now))

    def drained(self) -> bool:
        """Every submitted task of a closed queue is complete."""
        return self.closed and self.total is not None \
            and self.stats.completed >= self.total

    def claimable_seq(self, now: float) -> int | None:
        """Lowest seq immediately claimable (unleased, not done)."""
        best: int | None = None
        for seq, task in self.tasks.items():
            if task.done or task.active:
                continue
            if best is None or seq < best:
                best = seq
        return best

    def expired_leases(self, now: float) -> list[tuple[int, int]]:
        """``(seq, token)`` of every overdue active lease."""
        return sorted((task.seq, task.token) for task in self.tasks.values()
                      if task.expired(now))

    # -- replay ---------------------------------------------------------

    def apply(self, event: dict, payload: object = None) -> str:
        """Fold one decoded event in; returns its disposition.

        ``payload`` overrides the event's own ``payload`` field (the
        disk-backed queue passes ``(offset, length)`` refs so large
        completion payloads never live in memory twice).
        """
        kind = event.get("ev")
        if kind == "header":
            self.version = int(event.get("version", 0))
            identity = event.get("identity")
            self.identity = None if identity is None else str(identity)
            lease = event.get("lease_s")
            self.default_lease_s = None if lease is None else float(lease)
            return "header"
        if kind == "submit":
            return self._apply_submit(event, payload)
        if kind == "close":
            total = event.get("total")
            if self.closed or not isinstance(total, int):
                return "noop"
            self.closed, self.total = True, total
            return "close"
        if kind in ("claim", "heartbeat", "expire", "complete"):
            return self._apply_lease_event(kind, event, payload)
        self.stats.invalid += 1
        return "invalid"

    def _apply_submit(self, event: dict, payload: object) -> str:
        try:
            seq = int(event["seq"])
            key = tuple(event["key"])
        except (KeyError, TypeError, ValueError):
            self.stats.invalid += 1
            return "invalid"
        existing = self.tasks.get(seq)
        if existing is not None:
            if existing.key != key:
                raise TaskQueueError(
                    f"task queue seq {seq} re-submitted with a different "
                    f"key ({existing.key} != {key}); the spool mixes two "
                    f"schedules — use a fresh queue directory")
            return "noop"  # idempotent resubmit (coordinator restart)
        self.tasks[seq] = TaskRecord(
            seq=seq, key=key,
            payload=payload if payload is not None else event.get("payload"))
        self.stats.submitted += 1
        return "submit"

    def _apply_lease_event(self, kind: str, event: dict,
                           payload: object) -> str:
        try:
            seq = int(event["seq"])
            token = int(event["token"])
        except (KeyError, TypeError, ValueError):
            self.stats.invalid += 1
            return "invalid"
        task = self.tasks.get(seq)
        if task is None:
            self.stats.invalid += 1
            return "invalid"
        if kind == "claim":
            # Writers compute token = task.token + 1 under the lock, so
            # a mismatched token on replay is a fenced/duplicated write.
            if task.done or task.active or token != task.token + 1:
                self.stats.fenced += 1
                return "fenced"
            task.token = token
            task.worker = str(event.get("worker", ""))
            task.deadline = float(event.get("deadline", 0.0))
            task.active = True
            stolen_from, task.requeued_from = task.requeued_from, None
            if stolen_from is not None and stolen_from != task.worker:
                self.stats.stolen += 1
                return "steal"
            return "claim"
        if kind == "heartbeat":
            if not task.active or token != task.token:
                self.stats.fenced += 1
                return "fenced"
            task.deadline = float(event.get("deadline", task.deadline or 0.0))
            return "heartbeat"
        if kind == "expire":
            if not task.active or token != task.token:
                return "noop"  # raced with another observer: idempotent
            task.active = False
            task.requeued_from = task.worker
            self.stats.expired += 1
            return "expire"
        # complete
        if task.done or not task.active or token != task.token:
            self.stats.fenced += 1
            return "fenced"
        task.done = True
        task.active = False
        task.outcome = payload if payload is not None \
            else event.get("payload")
        self.stats.completed += 1
        return "complete"


def enrich_disposition(state: LeaseState, event: dict,
                       disposition: str) -> tuple[str, int, str]:
    """One ``(disposition, seq, worker)`` tuple for observers.

    ``expire`` and ``steal`` name the *previous* lease holder (the
    worker whose lease was lost), not the event's own ``worker`` field;
    this is the attribution both the on-disk replay and the broker
    client's network mirror must agree on, so it lives here once.
    """
    worker = str(event.get("worker") or "")
    if disposition in ("expire", "steal"):
        task = state.tasks.get(int(event.get("seq", -1)))
        if task is not None:
            worker = (task.requeued_from if disposition == "expire"
                      else task.worker) or ""
        else:
            worker = ""
    return disposition, int(event.get("seq", -1)), worker


# ----------------------------------------------------------------------
# Pluggable transport contract
# ----------------------------------------------------------------------


class QueueTransport:
    """The verb surface a campaign task-queue transport must provide.

    Two implementations exist: :class:`DurableTaskQueue` (same-host —
    every process appends to and replays one flock-serialized spool)
    and :class:`~repro.campaign.broker_client.BrokerClient` (cross-host
    — the verbs travel over HTTP to a ``repro broker serve`` process
    that owns the spool and is the *single authoritative clock* for
    lease deadlines).  :class:`~repro.campaign.scheduler.QueueScheduler`
    and :class:`~repro.campaign.worker.QueueWorker` are written against
    this surface only, which is what makes the backend pluggable.

    Coordinator verbs: ``open(create=True)``, ``submit``, ``close``,
    ``take_completion``, ``expire_overdue``, ``drain_dispositions``,
    ``live_workers``.  Worker verbs: ``open()``, ``claim``,
    ``heartbeat``, ``complete``, ``write_worker_heartbeat``.  Both
    sides read ``state`` (a replayed :class:`LeaseState`, or a mirror
    of the broker's) and ``clock`` (local monotonic time — only ever
    compared against itself; cross-host deadline arithmetic is the
    broker's job).
    """

    state: LeaseState
    clock: Callable[[], float]

    def open(self, create: bool = False) -> bool:
        raise NotImplementedError

    def submit(self, key: tuple, payload: str) -> int:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def take_completion(self, seq: int) -> str | None:
        raise NotImplementedError

    def expire_overdue(self) -> list[tuple[int, str]]:
        raise NotImplementedError

    def drain_dispositions(self) -> list[tuple[str, int, str]]:
        raise NotImplementedError

    def claim(self, worker: str, lease_s: float) -> "Claim | None":
        raise NotImplementedError

    def heartbeat(self, claim: "Claim", lease_s: float) -> bool:
        raise NotImplementedError

    def complete(self, claim: "Claim", payload: str) -> bool:
        raise NotImplementedError

    def write_worker_heartbeat(self, worker: str, ttl_s: float,
                               run_key: tuple | None = None,
                               token: int | None = None) -> None:
        raise NotImplementedError

    def live_workers(self) -> list[str]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Disk-backed queue
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerHeartbeat:
    """One decoded ``workers/<id>.hb`` file.

    ``age_s`` can be slightly negative (the worker beat between our
    clock read and the file read); a *large* negative age means the
    stamp predates a monotonic-clock restart and the worker is treated
    as dead.
    """

    worker: str
    pid: int
    mono: float
    ttl: float
    age_s: float
    run_key: tuple | None = None
    token: int | None = None

    @property
    def live(self) -> bool:
        return -self.ttl <= self.age_s <= self.ttl * _HEARTBEAT_GRACE


def _read_heartbeat(path: Path, now: float) -> WorkerHeartbeat | None:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        run_key = data.get("run_key")
        token = data.get("token")
        return WorkerHeartbeat(
            worker=path.stem, pid=int(data.get("pid", 0)),
            mono=float(data["mono"]), ttl=float(data["ttl"]),
            age_s=now - float(data["mono"]),
            run_key=tuple(run_key) if run_key is not None else None,
            token=None if token is None else int(token))
    except (OSError, ValueError, KeyError, TypeError):
        return None


@dataclass(frozen=True)
class Claim:
    """One successfully claimed task: identity + fencing credentials."""

    seq: int
    token: int
    worker: str
    key: tuple
    payload: str  # decoded submit payload (opaque to the queue)


@dataclass
class _PayloadRef:
    """Where a payload string lives inside ``events.spool``."""

    offset: int
    length: int


class _FlockHandle:
    """``flock``-based inter-process mutex over ``<dir>/queue.lock``.

    Falls back to an ``O_EXCL`` spin lock where ``fcntl`` is missing
    (non-POSIX); either way, release-on-process-death holds — flock
    drops with the fd, and the spin lock carries the owner pid so a
    stale lock from a dead process is broken.
    """

    def __init__(self, path: Path):
        self.path = path
        try:
            import fcntl
            self._fcntl = fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            self._fcntl = None
        self._fd: int | None = None

    def acquire(self) -> None:
        if self._fcntl is not None:
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            self._fcntl.flock(self._fd, self._fcntl.LOCK_EX)
            return
        self._acquire_spin()  # pragma: no cover - non-POSIX

    def release(self) -> None:
        if self._fcntl is not None:
            if self._fd is not None:
                self._fcntl.flock(self._fd, self._fcntl.LOCK_UN)
                os.close(self._fd)
                self._fd = None
            return
        self._release_spin()  # pragma: no cover - non-POSIX

    def _acquire_spin(self) -> None:  # pragma: no cover - non-POSIX
        spin_path = self.path.with_suffix(".spin")
        while True:
            try:
                fd = os.open(spin_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                return
            except FileExistsError:
                try:
                    pid = int(spin_path.read_text() or "0")
                    os.kill(pid, 0)
                except (OSError, ValueError):
                    spin_path.unlink(missing_ok=True)  # stale: owner died
                    continue
                time.sleep(0.01)

    def _release_spin(self) -> None:  # pragma: no cover - non-POSIX
        self.path.with_suffix(".spin").unlink(missing_ok=True)


class DurableTaskQueue(QueueTransport):
    """The disk-backed queue: event-log append + incremental replay.

    One instance per process; the coordinator opens it with the
    campaign ``identity`` (verified against the spool header) and
    ``payload_mode="ref"`` (completion payloads stay on disk until
    consumed), workers open it anonymously with ``payload_mode="drop"``
    (they never read completions).  ``clock`` must be the same
    monotonic clock in every process sharing the spool.
    """

    def __init__(self, root: str | Path, identity: str | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 payload_mode: str = "ref", fsync: bool = True,
                 default_lease_s: float | None = None):
        if payload_mode not in ("ref", "drop", "inline"):
            raise ValueError(f"unknown payload_mode {payload_mode!r}")
        self.root = Path(root)
        self.identity = identity
        self.default_lease_s = default_lease_s  # advertised in the header
        self.clock = clock
        self.payload_mode = payload_mode
        self.fsync = fsync
        self.state = LeaseState()
        self.events_path = self.root / "events.spool"
        self.workers_dir = self.root / "workers"
        self._lock = _FlockHandle(self.root / "queue.lock")
        self._mutex = threading.RLock()  # heartbeat-thread safety
        self._offset = 0  # replay position into events.spool
        self._skipped_lines = 0
        self._dispositions: list[tuple[str, int, str]] = []
        self._next_seq = 0

    # -- lifecycle ------------------------------------------------------

    def open(self, create: bool = False) -> bool:
        """Attach to the spool; ``create=True`` initialises a new one.

        Returns False when the spool does not exist yet (workers poll
        until the coordinator creates it).  Raises
        ``CheckpointMismatchError`` when the header identity and this
        queue's identity both exist and disagree.
        """
        if not self.events_path.exists():
            if not create:
                return False
            self.root.mkdir(parents=True, exist_ok=True)
            self.workers_dir.mkdir(exist_ok=True)
            with self._locked():
                if not self.events_path.exists():
                    self._append_events([{
                        "ev": "header", "version": QUEUE_VERSION,
                        "identity": self.identity,
                        "lease_s": self.default_lease_s}])
                    if self.fsync:
                        fsync_directory(self.root)
        if create:
            # Coordinator-side open: clear heartbeat files left by a
            # previous campaign against a reused queue directory, so
            # liveness views never show long-dead workers.
            self.prune_stale_worker_heartbeats()
        self.catch_up()
        self._check_identity()
        return True

    def _check_identity(self) -> None:
        if self.identity is None or self.state.identity is None:
            return
        if self.identity != self.state.identity:
            raise CheckpointMismatchError(
                f"task queue {self.root} belongs to a different campaign "
                f"(spool identity {self.state.identity}, this campaign "
                f"{self.identity}); use a fresh --queue-dir or rerun with "
                f"the original seed/config/operators")

    # -- coordinator API ------------------------------------------------

    def submit(self, key: tuple, payload: str) -> int:
        """Durably enqueue one task; idempotent across restarts.

        Tasks are numbered in submit order, which the coordinator calls
        in schedule order — so draining completions by ascending seq
        *is* the schedule-order merge.  A restarted coordinator
        re-submitting the same schedule is a no-op per existing seq
        (the key is verified), so resuming against a half-drained spool
        is safe.
        """
        with self._mutex:
            seq = self._next_seq
            self._next_seq += 1
            return self.submit_at(seq, key, payload)

    def submit_at(self, seq: int, key: tuple, payload: str) -> int:
        """Durably enqueue one task at an explicit ``seq``.

        The broker path: a restarted broker does not re-enumerate the
        schedule the way a restarted coordinator does, so it assigns
        seqs from its replayed state (``max + 1``) instead of a
        process-local counter.  Same idempotency contract as
        :meth:`submit` — a re-submit of an existing ``(seq, key)`` is a
        no-op, a key mismatch raises.
        """
        with self._mutex:
            self.catch_up()
            existing = self.state.tasks.get(seq)
            if existing is not None:
                if existing.key != tuple(key):
                    raise TaskQueueError(
                        f"task queue seq {seq} already holds key "
                        f"{existing.key}, not {tuple(key)}; the spool mixes "
                        f"two schedules — use a fresh queue directory")
                return seq
            with self._locked():
                self.catch_up()
                if seq not in self.state.tasks:
                    self._append_events([{"ev": "submit", "seq": seq,
                                          "key": list(key),
                                          "payload": payload}])
            return seq

    def close(self) -> None:
        """Seal the queue: no more submits; workers may drain and exit."""
        with self._mutex:
            self.catch_up()
            if self.state.closed:
                return
            with self._locked():
                self.catch_up()
                if not self.state.closed:
                    self._append_events([{"ev": "close",
                                          "total": len(self.state.tasks)}])

    def take_completion(self, seq: int) -> str | None:
        """Pop task ``seq``'s completion payload, or None if unfinished.

        In ``ref`` mode the payload is read back from the spool only
        now, and the in-memory ref is dropped after — the coordinator
        holds at most one completion payload at a time regardless of
        how far ahead of the merge the workers have raced.
        """
        with self._mutex:
            task = self.state.tasks.get(seq)
            if task is None or not task.done:
                return None
            outcome, task.outcome = task.outcome, None
            if isinstance(outcome, _PayloadRef):
                return self._read_payload_ref(outcome)
            return outcome  # inline payload, or None if already taken

    def expire_overdue(self) -> list[tuple[int, str]]:
        """Append expire events for every overdue lease (coordinator poll).

        Returns ``(seq, worker)`` for each lease actually expired here.
        Workers do the same opportunistically inside :meth:`claim`, so
        whichever side looks first requeues the work.
        """
        with self._mutex:
            self.catch_up()
            overdue = self.state.expired_leases(self.clock())
            if not overdue:
                return []
            expired: list[tuple[int, str]] = []
            with self._locked():
                self.catch_up()
                events = []
                for seq, token in self.state.expired_leases(self.clock()):
                    task = self.state.tasks[seq]
                    events.append({"ev": "expire", "seq": seq,
                                   "token": token})
                    expired.append((seq, task.worker or "?"))
                if events:
                    self._append_events(events)
            return expired

    def drain_dispositions(self) -> list[tuple[str, int, str]]:
        """New ``(disposition, seq, worker)`` tuples since the last call.

        Each replayed event is reported exactly once per process, in
        log order — the coordinator's counter/breaker routing consumes
        this.
        """
        with self._mutex:
            self.catch_up()
            out, self._dispositions = self._dispositions, []
            return out

    # -- worker API -----------------------------------------------------

    def claim(self, worker: str, lease_s: float) -> Claim | None:
        """Claim the lowest-seq available task under a ``lease_s`` lease.

        Expired leases encountered along the way are requeued first, so
        a claim by a different worker is exactly a steal.  Returns None
        when nothing is claimable right now.
        """
        with self._mutex:
            self.catch_up()
            now = self.clock()
            if self.state.claimable_seq(now) is None \
                    and not self.state.expired_leases(now):
                return None  # cheap lock-free fast path
            with self._locked():
                self.catch_up()
                now = self.clock()
                overdue = self.state.expired_leases(now)
                events = [{"ev": "expire", "seq": seq, "token": token}
                          for seq, token in overdue]
                overdue_seqs = {seq for seq, _ in overdue}
                # Claim target: lowest seq that is unfinished and either
                # unleased or being requeued by the expiries above.  The
                # expire events precede the claim in the log, so replay
                # (everyone's, including ours below) sees a consistent
                # requeue-then-claim sequence.
                seq = None
                for cand, task in self.state.tasks.items():
                    if task.done or (task.active
                                     and cand not in overdue_seqs):
                        continue
                    if seq is None or cand < seq:
                        seq = cand
                if seq is None:
                    if events:
                        self._append_events(events)
                    return None
                task = self.state.tasks[seq]
                token = task.token + 1  # expire never advances the token
                events.append({"ev": "claim", "seq": seq, "worker": worker,
                               "token": token, "deadline": now + lease_s})
                self._append_events(events)
                payload = task.payload
                if isinstance(payload, _PayloadRef):
                    payload = self._read_payload_ref(payload)
                return Claim(seq=seq, token=token, worker=worker,
                             key=task.key, payload=payload)

    def heartbeat(self, claim: Claim, lease_s: float) -> bool:
        """Extend a held lease; False when the lease was fenced off."""
        with self._mutex:
            self.catch_up()
            task = self.state.tasks.get(claim.seq)
            if task is None or not task.active or task.token != claim.token:
                return False
            with self._locked():
                self.catch_up()
                task = self.state.tasks.get(claim.seq)
                if task is None or not task.active \
                        or task.token != claim.token:
                    return False
                self._append_events([{"ev": "heartbeat", "seq": claim.seq,
                                      "token": claim.token,
                                      "deadline": self.clock() + lease_s}])
            return True

    def complete(self, claim: Claim, payload: str) -> bool:
        """Durably record a completion; False when fenced (discarded).

        Fencing is the no-double-completion guarantee: if this worker's
        lease expired and the run was stolen, its token is stale and
        the completion is rejected — the thief's completion (of the
        identical deterministic run) is the one that counts.
        """
        with self._mutex:
            with self._locked():
                self.catch_up()
                task = self.state.tasks.get(claim.seq)
                if task is None or task.done or not task.active \
                        or task.token != claim.token:
                    return False
                self._append_events([{"ev": "complete", "seq": claim.seq,
                                      "token": claim.token,
                                      "payload": payload}])
            return True

    # -- worker liveness ------------------------------------------------

    def write_worker_heartbeat(self, worker: str, ttl_s: float,
                               run_key: tuple | None = None,
                               token: int | None = None) -> None:
        """Refresh this worker's liveness file (atomic replace).

        ``run_key``/``token`` name the claim the worker is currently
        executing (``None`` between claims), so ``repro status`` can
        show not just *that* a worker is alive but *what* it holds and
        under which lease generation.
        """
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        path = self.workers_dir / f"{worker}.hb"
        tmp = path.with_suffix(".hb.tmp")
        record: dict = {"pid": os.getpid(), "mono": self.clock(),
                        "ttl": ttl_s}
        if run_key is not None:
            record["run_key"] = list(run_key)
        if token is not None:
            record["token"] = token
        tmp.write_text(json.dumps(record), encoding="utf-8")
        os.replace(tmp, path)

    def worker_heartbeats(self) -> list["WorkerHeartbeat"]:
        """Decode every readable heartbeat file (live and stale)."""
        if not self.workers_dir.exists():
            return []
        now = self.clock()
        beats = []
        for path in sorted(self.workers_dir.glob("*.hb")):
            beat = _read_heartbeat(path, now)
            if beat is not None:
                beats.append(beat)
        return beats

    def live_workers(self) -> list[str]:
        """Workers whose heartbeat file is within its ttl (+grace)."""
        return [beat.worker for beat in self.worker_heartbeats()
                if beat.live]

    def prune_stale_worker_heartbeats(self) -> list[str]:
        """Delete heartbeat files from long-dead worker incarnations.

        Called on queue open so ``repro status`` against a reused queue
        directory never lists last week's workers.  A file is pruned
        when its heartbeat is stale (past ttl + grace) or *implausible*
        — its monotonic stamp lies in the future, which is what a
        pre-reboot heartbeat looks like after ``CLOCK_MONOTONIC``
        restarts from zero.  Best-effort: racing with the worker's own
        atomic replace is harmless (it rewrites the file on its next
        beat).
        """
        if not self.workers_dir.exists():
            return []
        now = self.clock()
        pruned = []
        for path in sorted(self.workers_dir.glob("*.hb")):
            beat = _read_heartbeat(path, now)
            if beat is not None and beat.live:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing unlink
                continue
            pruned.append(path.stem)
        if pruned:
            get_instrumentation().events.emit(
                "queue.heartbeats_pruned", severity="debug",
                workers=pruned)
        return pruned

    # -- spool serving ---------------------------------------------------

    def read_raw(self, offset: int, max_bytes: int = 1 << 20,
                 ) -> tuple[bytes, int]:
        """Whole framed spool lines from ``offset`` on, verbatim.

        This is how the broker streams its spool to coordinator
        mirrors: the returned chunk ends at a newline (a torn tail is
        never served) and keeps the on-disk CRC framing, so the far end
        verifies line integrity over the network exactly as a local
        replay would on disk.  Returns ``(chunk, next_offset)``; an
        empty chunk means nothing new yet.
        """
        try:
            with self.events_path.open("rb") as handle:
                handle.seek(offset)
                data = handle.read(max_bytes)
        except OSError:
            return b"", offset
        end = data.rfind(b"\n")
        if end < 0:
            return b"", offset
        chunk = data[:end + 1]
        return chunk, offset + len(chunk)

    # -- replay / append internals --------------------------------------

    def _locked(self) -> "_LockScope":
        return _LockScope(self._lock)

    def catch_up(self) -> None:
        """Replay any events appended since the last catch-up.

        Only whole, newline-terminated lines are consumed; a torn tail
        (a writer died mid-append) is left unread until a later writer
        repairs the framing.  CRC-invalid lines are skipped and
        counted, never fatal.
        """
        with self._mutex:
            if not self.events_path.exists():
                return
            with self.events_path.open("rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
            if not data:
                return
            end = data.rfind(b"\n")
            if end < 0:
                return  # only a torn tail so far
            consumed = data[:end + 1]
            offset = self._offset
            self._offset += len(consumed)
            for raw in consumed.split(b"\n")[:-1]:
                line_offset = offset
                offset += len(raw) + 1
                stripped = raw.decode("utf-8", errors="replace").strip()
                if not stripped:
                    continue
                payload_text, crc_ok = unframe_line(stripped)
                if crc_ok is not True:
                    self._skipped_lines += 1
                    get_instrumentation().events.emit(
                        "queue.spool_corrupt_line", severity="warning",
                        queue=str(self.root), offset=line_offset)
                    logger.warning("task queue %s: skipped corrupt spool "
                                   "line at byte %d", self.root, line_offset)
                    continue
                self._replay_line(payload_text, line_offset, len(raw))

    def _replay_line(self, payload_text: str, line_offset: int,
                     line_length: int) -> None:
        try:
            event = json.loads(payload_text)
        except json.JSONDecodeError:
            self._skipped_lines += 1
            return
        if not isinstance(event, dict):
            self._skipped_lines += 1
            return
        payload_override = None
        if self.payload_mode != "inline" and isinstance(
                event.get("payload"), str):
            if self.payload_mode == "drop" and event.get("ev") == "complete":
                payload_override = ""  # workers never read completions
            else:
                # The payload is the JSON string field; rather than hold
                # it, remember where the framed line lives and re-read
                # on demand.
                payload_override = _PayloadRef(offset=line_offset,
                                               length=line_length)
        disposition = self.state.apply(event, payload=payload_override)
        self._dispositions.append(
            enrich_disposition(self.state, event, disposition))

    def _read_payload_ref(self, ref: _PayloadRef) -> str | None:
        with self.events_path.open("rb") as handle:
            handle.seek(ref.offset)
            raw = handle.read(ref.length)
        payload_text, crc_ok = unframe_line(
            raw.decode("utf-8", errors="replace").strip())
        if crc_ok is not True:
            return None
        try:
            event = json.loads(payload_text)
            value = event.get("payload")
            return value if isinstance(value, str) else None
        except json.JSONDecodeError:
            return None

    def _append_events(self, events: list[dict]) -> None:
        """Append framed events; caller must hold the flock.

        Our own writes are folded into local state by replaying them
        through the normal :meth:`catch_up` path afterwards — we hold
        the lock, so what we read back is exactly what we wrote (plus,
        harmlessly, anything appended before we acquired it).
        """
        created = not self.events_path.exists()
        with self.events_path.open("ab") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                # Repair a torn tail left by a writer killed mid-append:
                # a leading newline isolates the fragment into its own
                # (CRC-invalid, skipped) line instead of corrupting ours.
                with self.events_path.open("rb") as reader:
                    reader.seek(-1, os.SEEK_END)
                    if reader.read(1) != b"\n":
                        handle.write(b"\n")
            for event in events:
                encoded = frame_line(json.dumps(event)) + "\n"
                handle.write(encoded.encode("utf-8"))
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        if created and self.fsync:
            fsync_directory(self.root)
        self.catch_up()


class _LockScope:
    def __init__(self, lock: _FlockHandle):
        self._lock = lock

    def __enter__(self) -> "_LockScope":
        self._lock.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self._lock.release()
