"""Seeded network fault injection for the campaign broker transport.

The broker chaos tests (and the CI broker smoke) need a *lossy
network* that is deterministic per seed: requests dropped before they
reach the broker, responses dropped after the broker committed the
verb (the at-least-once hazard that makes idempotency keys necessary),
duplicated deliveries, injected 503s, mangled response bodies (caught
by the CRC line framing) and sustained partitions.  The injector wraps
the client's low-level send callable, so every fault exercises the
exact retry/idempotency path production traffic uses — nothing is
mocked above the socket boundary.

Fault decisions are drawn from one ``random.Random(seed)`` under a
lock, in request order; a single-threaded client therefore sees an
exactly reproducible fault schedule, and multi-threaded clients a
deterministic fault *budget* (the set of decisions) with
interleaving-dependent assignment — the chaos suite asserts
invariants, not traces.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "NET_FAULT_KINDS",
    "InjectedNetworkFault",
    "NetFaultReport",
    "NetworkFaultInjector",
]

#: Everything the injector can do to one request/response exchange.
NET_FAULT_KINDS: tuple[str, ...] = (
    "drop_request",     # never reaches the broker
    "drop_response",    # broker committed the verb; client never learns
    "duplicate",        # delivered twice, back to back
    "delay",            # delivered late (bounded seeded delay)
    "error_503",        # a load balancer answering for a dead broker
    "mangle_response",  # response body bit-flipped in flight
)


class InjectedNetworkFault(ConnectionError):
    """A request or response the injector made disappear.

    A ``ConnectionError`` so the broker client's transport-fault
    handling treats it exactly like a real refused/reset connection.
    """


@dataclass
class NetFaultReport:
    """What the injector did, for assertions and chaos summaries."""

    requests: int = 0
    faults: int = 0
    counts: dict = field(default_factory=dict)

    def record(self, kind: str) -> None:
        self.faults += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def summary(self) -> str:
        detail = ", ".join(f"{kind}={count}" for kind, count
                           in sorted(self.counts.items()))
        return (f"{self.faults}/{self.requests} requests faulted"
                + (f" ({detail})" if detail else ""))


class NetworkFaultInjector:
    """Wrap a ``send(method, path, body) -> (status, body)`` callable.

    ``rate`` is the per-request probability of drawing a fault from
    ``kinds``.  ``partition_every``/``partition_length`` additionally
    impose sustained request-count-based partitions: after every
    ``partition_every`` delivered requests, the next
    ``partition_length`` requests are all dropped — deterministic
    multi-request outage windows that per-request sampling alone never
    produces.  ``delay_s`` bounds the seeded delay fault; ``sleep`` is
    injectable so tests can run delay faults without waiting.
    """

    def __init__(self, send: Callable[[str, str, bytes], tuple[int, bytes]],
                 seed: int = 0, rate: float = 0.2,
                 kinds: tuple[str, ...] = NET_FAULT_KINDS,
                 partition_every: int | None = None,
                 partition_length: int = 5,
                 delay_s: float = 0.02,
                 sleep: Callable[[float], None] = time.sleep):
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        unknown = set(kinds) - set(NET_FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self.send = send
        self.kinds = tuple(kinds)
        self.rate = rate
        self.partition_every = partition_every
        self.partition_length = partition_length
        self.delay_s = delay_s
        self.sleep = sleep
        self.report = NetFaultReport()
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def _decide(self) -> str | None:
        """One seeded fault decision, drawn in request order."""
        with self._lock:
            index = self.report.requests
            self.report.requests += 1
            if self.partition_every is not None:
                cycle = self.partition_every + self.partition_length
                if index % cycle >= self.partition_every:
                    self.report.record("partition")
                    return "drop_request"
            if self.kinds and self._rng.random() < self.rate:
                kind = self._rng.choice(self.kinds)
                self.report.record(kind)
                return kind
            return None

    def __call__(self, method: str, path: str,
                 body: bytes) -> tuple[int, bytes]:
        kind = self._decide()
        if kind is None:
            return self.send(method, path, body)
        if kind == "drop_request":
            raise InjectedNetworkFault(
                f"injected fault: {method} {path} request dropped")
        if kind == "drop_response":
            self.send(method, path, body)  # the broker DID see this
            raise InjectedNetworkFault(
                f"injected fault: {method} {path} response dropped")
        if kind == "duplicate":
            self.send(method, path, body)
            return self.send(method, path, body)
        if kind == "delay":
            with self._lock:
                fraction = self._rng.random()
            self.sleep(self.delay_s * fraction)
            return self.send(method, path, body)
        if kind == "error_503":
            return 503, b"injected fault: service unavailable"
        # mangle_response: flip one byte so framing/digest checks fire.
        status, payload = self.send(method, path, body)
        if not payload:
            return status, payload
        with self._lock:
            index = self._rng.randrange(len(payload))
        mangled = bytes([payload[i] ^ 0x20 if i == index else payload[i]
                         for i in range(len(payload))])
        return status, mangled
