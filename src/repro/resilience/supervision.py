"""Campaign supervision: run deadlines, crash containment, graceful stop.

A months-long field campaign treats partial failure as the normal case
(§4.1), and the parallel campaign engine (PR 3) adds two failure modes
the retry/quarantine machinery alone cannot absorb: a *hung* run wedges
its pool slot forever, and an OOM-killed / crashed worker breaks the
whole ``ProcessPoolExecutor``.  This module is the supervision layer
the runner drives:

* **Deadlines** — the cooperative per-run budget lives in
  :mod:`repro.core.deadline` (re-exported here); the *hard* backstop
  for hung workers is :func:`parent_wait_budget` + the supervisor's
  kill-and-respawn cycle.
* **Crash containment** — :class:`PoolSupervisor` owns the executor:
  it can kill wedged worker processes outright and rebuild the pool,
  while :class:`CircuitBreaker` bounds how often that may happen
  before the campaign fails fast with a diagnostic summary
  (:class:`CircuitBreakerOpen`).
* **Graceful shutdown** — :func:`graceful_shutdown` converts SIGTERM
  into :class:`ShutdownRequested` (a ``BaseException``, mirroring
  ``KeyboardInterrupt``) so the runner can drain finished futures and
  flush the checkpoint before exiting, and the CLI can print the
  resume hint.

Every supervision event is reported into the active
:class:`~repro.obs.Instrumentation` bundle:
``campaign_run_timeouts_total``, ``campaign_pool_rebuilds_total``,
``campaign_runs_rescheduled_total`` and ``campaign_breaker_trips_total``
counters plus a ``pool_rebuild`` span per kill-and-respawn cycle.
"""

from __future__ import annotations

import signal
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.core.deadline import (
    Deadline,
    RunTimeoutError,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.obs import get_instrumentation

__all__ = [
    "CircuitBreaker",
    "CircuitBreakerOpen",
    "Deadline",
    "PoolSupervisor",
    "RunTimeoutError",
    "ShutdownRequested",
    "WorkerCrashError",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "graceful_shutdown",
    "parent_wait_budget",
]


class WorkerCrashError(RuntimeError):
    """A pool worker died abnormally (OOM kill, hard crash) mid-run."""


class CircuitBreakerOpen(RuntimeError):
    """Supervision gave up: the failure pattern looks systemic.

    Carries the breaker's diagnostic summary (rebuild count, consecutive
    failures, the most recent events) so the operator sees *why* the
    campaign failed fast instead of burning the whole schedule.
    """


class ShutdownRequested(BaseException):
    """A graceful-stop signal (SIGTERM) arrived.

    A ``BaseException`` on purpose, exactly like ``KeyboardInterrupt``:
    the retry loop only absorbs ``Exception``, so a shutdown request
    always propagates to the runner's drain-and-flush path and then to
    the CLI's resume hint.
    """

    def __init__(self, signum: int = signal.SIGTERM):
        super().__init__(f"shutdown requested (signal {signum})")
        self.signum = signum


def parent_wait_budget(run_timeout_s: float, max_retries: int) -> float:
    """The hard wall-clock the parent grants one worker future.

    The worker enforces ``run_timeout_s`` per attempt *cooperatively*
    and may retry up to ``max_retries`` times in-process, so the
    parent-side deadline must cover the whole retry envelope — plus a
    50% grace factor for scheduling slack — before concluding the
    worker is genuinely hung and killing it.  A cooperative worker-side
    timeout therefore always wins the race, keeping parallel results
    bit-identical to sequential whenever the run is slow rather than
    stuck.
    """
    return run_timeout_s * (max_retries + 1) * 1.5


@dataclass
class CircuitBreaker:
    """Fail-fast guard over supervision-level recovery actions.

    Two independent thresholds, both meaning "this is not partial
    failure any more, stop wasting the schedule":

    * ``max_rebuilds`` — pool kill-and-respawn cycles (timeouts and
      worker crashes) per campaign; the N+1-th rebuild trips.
    * ``max_consecutive_failures`` — runs that ended in quarantine
      (any cause) without an intervening success; ``0`` disables the
      check, which is the default so high-failure-rate chaos campaigns
      keep their run-to-completion semantics.
    """

    max_rebuilds: int = 3
    max_consecutive_failures: int = 0
    rebuilds: int = 0
    consecutive_failures: int = 0
    failures_total: int = 0
    events: list[str] = field(default_factory=list)

    #: Most recent events kept for the diagnostic summary.
    EVENT_LIMIT = 12

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self, kind: str, key: tuple) -> None:
        """One quarantined/timed-out/crashed run; trips on a streak."""
        self.failures_total += 1
        self.consecutive_failures += 1
        self._event(f"{kind} at {'/'.join(str(part) for part in key)}")
        if self.max_consecutive_failures > 0 \
                and self.consecutive_failures >= self.max_consecutive_failures:
            self._trip(f"{self.consecutive_failures} consecutive run "
                       f"failures (limit {self.max_consecutive_failures})")

    def record_rebuild(self, reason: str) -> None:
        """One pool kill-and-respawn cycle; trips past ``max_rebuilds``."""
        self.rebuilds += 1
        self._event(f"pool rebuild ({reason})")
        if self.rebuilds > self.max_rebuilds:
            self._trip(f"{self.rebuilds} pool rebuilds "
                       f"(limit {self.max_rebuilds})")

    def summary(self, reason: str) -> str:
        lines = [
            f"circuit breaker open: {reason}",
            f"  pool rebuilds: {self.rebuilds}",
            f"  failures: {self.failures_total} total, "
            f"{self.consecutive_failures} consecutive",
        ]
        if self.events:
            lines.append("  recent events:")
            lines.extend(f"    - {event}" for event in self.events)
        return "\n".join(lines)

    def trip(self, reason: str) -> None:
        """Open the breaker now, whatever the thresholds say.

        For supervision layers with their own systemic-failure signal —
        the queue scheduler trips on a stalled spool with no live
        workers — so every fail-fast path raises the same
        :class:`CircuitBreakerOpen` with the same diagnostic summary.
        """
        obs = get_instrumentation()
        obs.registry.counter("campaign_breaker_trips_total").inc()
        obs.events.emit("breaker.open", severity="error", reason=reason,
                        rebuilds=self.rebuilds,
                        failures=self.failures_total)
        raise CircuitBreakerOpen(self.summary(reason))

    def _event(self, event: str) -> None:
        self.events.append(event)
        del self.events[:-self.EVENT_LIMIT]

    _trip = trip


class PoolSupervisor:
    """Owns the campaign's worker pool: submit, kill, rebuild.

    ``ProcessPoolExecutor`` has no per-task cancellation for running
    work, so the only way to reclaim a hung worker is to terminate the
    worker processes and start a fresh pool; the runner then reschedules
    the in-flight keys.  Every rebuild is breaker-gated and reported as
    a ``campaign_pool_rebuilds_total`` counter increment plus a
    ``pool_rebuild`` span.
    """

    def __init__(self, workers: int, mp_context,
                 breaker: CircuitBreaker | None = None):
        self.workers = workers
        self._mp_context = mp_context
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.pool: ProcessPoolExecutor | None = None

    def start(self) -> bool:
        """Build the first pool; False when the platform refuses one."""
        self.pool = self._build_pool()
        return self.pool is not None

    def submit(self, fn: Callable, *args) -> Future:
        if self.pool is None:
            raise WorkerCrashError("worker pool is not running")
        return self.pool.submit(fn, *args)

    def kill(self) -> None:
        """Terminate the worker processes and discard the executor.

        Used both for hung-worker reclamation (rebuild) and for
        emergency shutdown: ``shutdown(wait=True)`` would block on the
        hung run forever.
        """
        pool, self.pool = self.pool, None
        if pool is None:
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        for process in processes:
            try:
                process.join(timeout=1.0)
            except (OSError, ValueError, AssertionError):  # pragma: no cover
                pass

    def rebuild(self, reason: str) -> None:
        """Kill-and-respawn cycle, breaker-gated and instrumented."""
        obs = get_instrumentation()
        obs.registry.counter("campaign_pool_rebuilds_total").inc()
        obs.events.emit("pool.rebuild", severity="warning", reason=reason,
                        workers=self.workers)
        with obs.tracer.span("pool_rebuild", reason=reason,
                             workers=self.workers):
            self.kill()
            self.breaker.record_rebuild(reason)  # may raise (pool is dead)
            self.pool = self._build_pool()
        if self.pool is None:
            raise WorkerCrashError(
                f"could not rebuild the worker pool after {reason}")

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        pool, self.pool = self.pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    def _build_pool(self) -> ProcessPoolExecutor | None:
        try:
            return ProcessPoolExecutor(max_workers=self.workers,
                                       mp_context=self._mp_context)
        except (OSError, PermissionError, ValueError):
            return None


@contextmanager
def graceful_shutdown(signals: tuple[int, ...] = (signal.SIGTERM,
                                                  signal.SIGINT),
                      ) -> Iterator[None]:
    """Raise :class:`ShutdownRequested` on SIGTERM *and* SIGINT.

    SIGTERM is what a fleet scheduler or ``timeout(1)`` sends; SIGINT
    is Ctrl-C.  Registering both unifies interactive interruption with
    the orchestrated stop: one drain-flush-resume path, distinguished
    only by the exit code (``128 + signum``: 130 vs 143).
    :class:`ShutdownRequested` carries the signal number for that.

    Installing a handler is only legal in the main thread; elsewhere
    the context manager degrades to a no-op so library callers never
    crash.  Prior handlers are restored on exit even when installation
    failed partway through.
    """

    def _handler(signum, frame):  # noqa: ARG001 - signal handler signature
        raise ShutdownRequested(signum)

    installed: dict[int, object] = {}
    try:
        try:
            for signum in signals:
                installed[signum] = signal.signal(signum, _handler)
        except ValueError:  # pragma: no cover - non-main thread
            # Restore whatever *did* get installed before degrading to
            # a no-op — a half-installed handler set would otherwise
            # leak past this context manager.
            for signum, previous in installed.items():
                signal.signal(signum, previous)
            installed = {}
        yield
    finally:
        for signum, previous in installed.items():
            signal.signal(signum, previous)


#: The executor-broken exception family the supervisor contains
#: (``BrokenProcessPool`` is a ``BrokenExecutor`` subclass).
POOL_CRASH_ERRORS = (BrokenExecutor,)
