"""Structured exception taxonomy for trace ingestion.

Real NSG captures are messy — truncated files, dropped or duplicated
lines, clock jumps (Narayanan et al. report the same capture-loss
problems in drive testing) — so the parser needs to say *what* is wrong
with a line, not just raise a bare ``KeyError`` from deep inside a
record decoder.  Every ingestion failure surfaces as a
:class:`TraceParseError` subclass carrying the one-based line number of
the offending JSONL line and the record kind it claimed to be, which is
what recover-mode quarantining and the :class:`~repro.resilience.ingest.ParseReport`
tallies key on.

The taxonomy (all subclasses of :class:`TraceParseError`, itself a
``ValueError`` for backward compatibility):

* :class:`TraceDecodeError` — the line is not valid JSON (truncation).
* :class:`MalformedHeaderError` — the ``{"meta": ...}`` header line is
  present but undecodable.
* :class:`UnknownRecordKindError` — valid JSON, but the ``kind`` tag
  names no known record type.
* :class:`MalformedRecordError` — a known record kind whose payload is
  missing fields or carries values of the wrong type.
* :class:`OutOfOrderRecordError` — a well-formed record whose timestamp
  precedes the trace tail (shuffled/duplicated capture segments).
"""

from __future__ import annotations


class TraceParseError(ValueError):
    """Base class for malformed trace input.

    ``line_number`` is the one-based JSONL line the error occurred on
    (``None`` when parsing a bare record dict outside file context) and
    ``record_kind`` is the record's ``kind`` tag where one could be
    determined (``"meta"`` for the header line, ``"?"`` when unknown).
    """

    def __init__(self, message: str, *, line_number: int | None = None,
                 record_kind: str | None = None):
        super().__init__(message)
        self.message = message
        self.line_number = line_number
        self.record_kind = record_kind

    def __str__(self) -> str:
        if self.line_number is None:
            return self.message
        return f"line {self.line_number}: {self.message}"


class TraceDecodeError(TraceParseError):
    """A JSONL line that is not valid JSON (e.g. a truncated write)."""


class MalformedHeaderError(TraceParseError):
    """A ``{"meta": ...}`` header whose contents cannot be decoded."""


class UnknownRecordKindError(TraceParseError):
    """A record whose ``kind`` tag names no known record type."""


class MalformedRecordError(TraceParseError):
    """A known record kind with missing fields or mistyped values."""


class OutOfOrderRecordError(TraceParseError):
    """A record whose timestamp precedes the current trace tail."""
