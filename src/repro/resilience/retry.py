"""Deterministic retry with seeded backoff for campaign runs.

Field campaigns lose individual runs (app crashes, modem wedges, a
server that stops serving) without invalidating the campaign.  The
runner therefore executes every run through :func:`execute_with_retry`:
a bounded number of attempts with exponential backoff whose jitter is
*seeded* — derived from the retry seed and the run key, never from wall
clock or global RNG state — so a re-run of the same campaign retries at
identical simulated delays and quarantines identical runs.

Sleeping is injected: pass ``sleep=time.sleep`` for real pacing, or
leave it ``None`` (the default) to record the schedule without waiting,
which is what simulations and tests want.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.seeding import stable_seed as _mix
from repro.obs import get_instrumentation

#: Bucket bounds for the attempts-per-run histogram (attempt counts are
#: small integers, so unit-width buckets keep the distribution exact).
ATTEMPT_BUCKETS: tuple[float, ...] = (1, 2, 3, 4, 5, 8, 13, 21)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed run, and how long to wait.

    Attempt ``n`` (zero-based retry index) backs off
    ``backoff_base_s * backoff_factor**n``, scaled by a deterministic
    jitter in ``[1, 1 + jitter]`` derived from ``(seed, key, n)``.
    ``max_retries == 0`` means one attempt, no retries.

    ``backoff_max_s`` caps the post-jitter delay: ``backoff_factor**n``
    grows without bound, so long network-retry loops (the broker
    client's per-verb retries) would otherwise sleep for minutes on the
    tail attempts.  The default ``None`` preserves the exact schedules
    existing policies produce for their configured ``max_retries``.
    """

    max_retries: int = 0
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    backoff_max_s: float | None = None

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_max_s is not None and self.backoff_max_s < 0:
            raise ValueError("backoff_max_s must be >= 0 (or None)")

    def backoff_s(self, key: tuple, retry_index: int) -> float:
        """Deterministic backoff before retry ``retry_index`` of ``key``."""
        base = self.backoff_base_s * self.backoff_factor ** retry_index
        unit = _mix(self.seed, *key, retry_index) / 0xFFFFFFFF
        delay = base * (1.0 + self.jitter * unit)
        if self.backoff_max_s is not None:
            delay = min(delay, self.backoff_max_s)
        return delay

    def schedule(self, key: tuple) -> list[float]:
        """The full backoff schedule this policy would use for ``key``."""
        return [self.backoff_s(key, n) for n in range(self.max_retries)]


@dataclass
class AttemptOutcome:
    """What happened when a run was pushed through the retry loop."""

    value: object = None
    attempts: int = 0
    error: Exception | None = None
    backoffs_s: list[float] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.error is None


def execute_with_retry(fn: Callable[[], object], policy: RetryPolicy,
                       key: tuple = (),
                       sleep: Callable[[float], None] | None = None,
                       ) -> AttemptOutcome:
    """Run ``fn`` under ``policy``; never raises on run failure.

    ``Exception`` s from ``fn`` are retried up to ``policy.max_retries``
    times and the last one is returned in the outcome; ``BaseException``
    (e.g. ``KeyboardInterrupt``) propagates so an operator can stop a
    campaign and later resume it from the checkpoint.
    """
    obs = get_instrumentation()
    registry = obs.registry
    outcome = AttemptOutcome()
    for attempt in range(policy.max_retries + 1):
        outcome.attempts = attempt + 1
        try:
            outcome.value = fn()
            outcome.error = None
            break
        except Exception as error:  # noqa: BLE001 - per-run isolation
            outcome.error = error
            if attempt >= policy.max_retries:
                break
            delay = policy.backoff_s(key, attempt)
            outcome.backoffs_s.append(delay)
            registry.histogram("retry_backoff_seconds").observe(delay)
            obs.events.emit("run.retry", severity="warning",
                            run_key=key or None, attempt=attempt + 1,
                            backoff_s=round(delay, 4),
                            error=f"{type(error).__name__}: {error}")
            if sleep is not None and delay > 0:
                sleep(delay)
    registry.histogram("retry_attempts",
                       buckets=ATTEMPT_BUCKETS).observe(outcome.attempts)
    if outcome.backoffs_s:
        registry.counter("retry_retries_total").inc(len(outcome.backoffs_s))
    return outcome
