"""Append-only campaign checkpointing.

Every completed (or definitively failed) run is appended to a JSONL
checkpoint file as soon as it finishes, so an interrupted campaign
resumes from the last completed run instead of starting over.  Success
entries embed the run's serialized signaling trace: on resume the trace
is re-parsed and re-analysed — cheap — instead of re-simulated
(re-measured) — expensive — which mirrors how a field campaign would
reload captures rather than redrive an area.

The reader is deliberately corruption-tolerant: a process killed
mid-append leaves a truncated final line, which is simply ignored (that
run re-executes on resume).  Later entries for the same key win, so
re-running a previously failed run overwrites its quarantine entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

#: (operator, area, location, run_index) — the identity of one run.
RunKey = tuple[str, str, str, int]


@dataclass(frozen=True)
class CheckpointEntry:
    """One checkpointed run: its key, outcome, and payload."""

    key: RunKey
    status: str  # "ok" | "failed"
    trace_jsonl: str | None = None
    error: str | None = None
    attempts: int = 1

    @property
    def succeeded(self) -> bool:
        return self.status == "ok"


class CampaignCheckpoint:
    """Append-only JSONL record of per-run campaign outcomes."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def record_success(self, key: RunKey, trace_jsonl: str | None) -> None:
        """Record a completed run.

        ``trace_jsonl=None`` records a *trace-less* success (a custom
        ``run_fn`` dropped the trace): resume then knows the run
        completed but deliberately re-executes it, since there is
        nothing to restore the analysis from.
        """
        self._append({"key": list(key), "status": "ok",
                      "trace": trace_jsonl})

    def record_failure(self, key: RunKey, error: str, attempts: int) -> None:
        self._append({"key": list(key), "status": "failed",
                      "error": error, "attempts": attempts})

    def _append(self, entry: dict) -> None:
        line = json.dumps(entry)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self) -> dict[RunKey, CheckpointEntry]:
        """Read back all valid entries; malformed lines are skipped.

        The file is streamed line by line rather than slurped: success
        entries embed full serialized traces, so a campaign-scale
        checkpoint can reach hundreds of MB and must never be held in
        memory twice (once as text, once decoded).
        """
        if not self.path.exists():
            return {}
        entries: dict[RunKey, CheckpointEntry] = {}
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                entry = _decode_entry(line)
                if entry is not None:
                    entries[entry.key] = entry
        return entries


def _decode_entry(line: str) -> CheckpointEntry | None:
    stripped = line.strip()
    if not stripped:
        return None
    try:
        data = json.loads(stripped)
        raw_key = data["key"]
        key = (str(raw_key[0]), str(raw_key[1]), str(raw_key[2]),
               int(raw_key[3]))
        status = str(data["status"])
        if status == "ok":
            trace = data["trace"]
            return CheckpointEntry(key=key, status=status,
                                   trace_jsonl=(None if trace is None
                                                else str(trace)))
        if status == "failed":
            return CheckpointEntry(key=key, status=status,
                                   error=str(data.get("error", "")),
                                   attempts=int(data.get("attempts", 1)))
    except (json.JSONDecodeError, KeyError, IndexError, TypeError, ValueError):
        return None
    return None
