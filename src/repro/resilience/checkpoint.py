"""Append-only campaign checkpointing, durable and verifiable.

Every completed (or definitively failed) run is appended to a JSONL
checkpoint file as soon as it finishes, so an interrupted campaign
resumes from the last completed run instead of starting over.  Success
entries embed the run's serialized signaling trace: on resume the trace
is re-parsed and re-analysed — cheap — instead of re-simulated
(re-measured) — expensive — which mirrors how a field campaign would
reload captures rather than redrive an area.

**v1 on-disk format** (the writer's native format)::

    <crc32:8 hex> {"version": 1, "identity": "<campaign hash>"}
    <crc32:8 hex> {"key": [...], "status": "ok", "trace": "..."}
    <crc32:8 hex> {"key": [...], "status": "failed", ...}

* The *header* line carries a campaign identity hash (seed + the
  schedule-defining config + operators); resuming against a checkpoint
  whose identity does not match raises :class:`CheckpointMismatchError`
  instead of silently merging two different campaigns.
* Every line is prefixed with the CRC32 of its JSON payload, so
  *mid-file* corruption (a flipped bit, a mangled range) is detected
  and the affected entry quarantined — not just the truncated tail a
  killed writer leaves.
* Appends are ``flush`` + ``os.fsync`` by default (opt out with
  ``fsync=False`` / ``--no-fsync``), so an acknowledged run survives
  power loss, not merely process death.  Creating the file also fsyncs
  the parent *directory* once: without that, a freshly created
  checkpoint can vanish entirely on power loss even though every line
  in it was fsynced (the directory entry itself was still volatile).

The CRC line framing (:func:`frame_line` / :func:`unframe_line`) and
the directory barrier (:func:`fsync_directory`) are shared with the
durable task-queue spool (:mod:`repro.resilience.taskqueue`), which
persists campaign work items with the same durability contract.

The reader is corruption-tolerant and backward compatible: headerless
bare-JSON *v0* files still load (no CRC/identity verification), corrupt
lines are skipped, counted into the ``checkpoint_lines_skipped_total``
metric and reported in a single warning naming the line numbers.  Later
entries for the same key win, so re-running a previously failed run
overwrites its quarantine entry.
"""

from __future__ import annotations

import json
import logging
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import get_instrumentation

logger = logging.getLogger(__name__)

#: (operator, area, location, run_index) — the identity of one run.
RunKey = tuple[str, str, str, int]

#: The checkpoint format this writer produces.
CHECKPOINT_VERSION = 1

#: How many corrupt line numbers the single load() warning names.
_WARN_LINE_LIMIT = 20

#: ``<8 hex chars><space>`` CRC frame prefix length.
_FRAME_PREFIX = 9


class CheckpointMismatchError(ValueError):
    """Resume attempted against a checkpoint from a different campaign."""


def fsync_directory(path: str | Path) -> None:
    """One-shot fsync of a directory, so a new file's entry is durable.

    ``os.fsync`` on a file makes its *contents* durable; the directory
    entry pointing at a freshly created file needs its own fsync or the
    whole file can be gone after power loss.  Best-effort: platforms
    (or filesystems) that refuse to open/fsync directories simply skip
    the barrier rather than fail the append.
    """
    try:
        fd = os.open(path, os.O_RDONLY | getattr(os, "O_DIRECTORY", 0))
    except OSError:  # pragma: no cover - platform specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform specific
        pass
    finally:
        os.close(fd)


@dataclass(frozen=True)
class CheckpointEntry:
    """One checkpointed run: its key, outcome, and payload."""

    key: RunKey
    status: str  # "ok" | "failed"
    trace_jsonl: str | None = None
    error: str | None = None
    attempts: int = 1

    @property
    def succeeded(self) -> bool:
        return self.status == "ok"


@dataclass
class CheckpointLoadReport:
    """What one :meth:`CampaignCheckpoint.load_report` pass found."""

    entries: dict[RunKey, CheckpointEntry] = field(default_factory=dict)
    version: int = 0  # 0 = legacy headerless file
    identity: str | None = None
    lines_total: int = 0
    skipped_lines: list[int] = field(default_factory=list)  # 1-based

    @property
    def lines_skipped(self) -> int:
        return len(self.skipped_lines)


class CampaignCheckpoint:
    """Append-only, CRC-framed JSONL record of per-run campaign outcomes.

    ``identity`` is the campaign identity hash written into the v1
    header (``None`` writes headerless CRC-framed lines and skips the
    resume identity check — the direct-manipulation mode tests use).
    ``fsync=False`` drops the per-append ``os.fsync`` for callers that
    prefer throughput over power-loss durability.
    """

    def __init__(self, path: str | Path, identity: str | None = None,
                 fsync: bool = True):
        self.path = Path(path)
        self.identity = identity
        self.fsync = fsync

    def record_success(self, key: RunKey, trace_jsonl: str | None) -> None:
        """Record a completed run.

        ``trace_jsonl=None`` records a *trace-less* success (a custom
        ``run_fn`` dropped the trace): resume then knows the run
        completed but deliberately re-executes it, since there is
        nothing to restore the analysis from.
        """
        self._append({"key": list(key), "status": "ok",
                      "trace": trace_jsonl})

    def record_failure(self, key: RunKey, error: str, attempts: int) -> None:
        self._append({"key": list(key), "status": "failed",
                      "error": error, "attempts": attempts})

    def _append(self, entry: dict) -> None:
        created = not self.path.exists()
        with self.path.open("a", encoding="utf-8") as handle:
            if handle.tell() == 0 and self.identity is not None:
                header = json.dumps({"version": CHECKPOINT_VERSION,
                                     "identity": self.identity})
                handle.write(frame_line(header) + "\n")
            handle.write(frame_line(json.dumps(entry)) + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        if created and self.fsync:
            fsync_directory(self.path.parent)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self) -> dict[RunKey, CheckpointEntry]:
        """Read back all valid entries (see :meth:`load_report`)."""
        return self.load_report().entries

    def load_report(self) -> CheckpointLoadReport:
        """Stream the checkpoint back, verifying CRCs and identity.

        The file is streamed line by line rather than slurped: success
        entries embed full serialized traces, so a campaign-scale
        checkpoint can reach hundreds of MB and must never be held in
        memory twice (once as text, once decoded).

        Corrupt lines (bad CRC, undecodable payload) are skipped and
        reported — once, with line numbers — plus counted into the
        ``checkpoint_lines_skipped_total`` metric; the affected runs
        simply re-execute on resume.  Raises
        :class:`CheckpointMismatchError` when both this checkpoint and
        the file header carry an identity and they disagree.
        """
        report = CheckpointLoadReport()
        if not self.path.exists():
            return report
        # errors="replace": a bit flip can make a byte invalid UTF-8,
        # and the loader must skip that line, not raise mid-stream.
        # The replacement character changes the payload, so the CRC
        # check catches it like any other corruption.
        with self.path.open("r", encoding="utf-8",
                            errors="replace") as handle:
            for number, line in enumerate(handle, start=1):
                report.lines_total = number
                stripped = line.strip()
                if not stripped:
                    continue
                payload, crc_ok = unframe_line(stripped)
                if crc_ok is False:
                    report.skipped_lines.append(number)
                    continue
                if number == 1:
                    header = _decode_header(payload)
                    if header is not None:
                        report.version, report.identity = header
                        self._check_identity(report.identity)
                        continue
                entry = _decode_entry(payload)
                if entry is None:
                    report.skipped_lines.append(number)
                    continue
                report.entries[entry.key] = entry
        self._report_skipped(report)
        return report

    def _check_identity(self, file_identity: str | None) -> None:
        if self.identity is None or file_identity is None:
            return
        if file_identity != self.identity:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} belongs to a different campaign "
                f"(checkpoint identity {file_identity}, this campaign "
                f"{self.identity}); refusing to merge — use a fresh "
                f"checkpoint path or rerun with the original "
                f"seed/config/operators")

    def _report_skipped(self, report: CheckpointLoadReport) -> None:
        if not report.skipped_lines:
            return
        obs = get_instrumentation()
        obs.registry.counter(
            "checkpoint_lines_skipped_total").inc(report.lines_skipped)
        obs.events.emit("checkpoint.lines_skipped", severity="warning",
                        path=str(self.path), skipped=report.lines_skipped)
        shown = ", ".join(str(number)
                          for number in report.skipped_lines[:_WARN_LINE_LIMIT])
        if report.lines_skipped > _WARN_LINE_LIMIT:
            shown += f", … ({report.lines_skipped - _WARN_LINE_LIMIT} more)"
        logger.warning(
            "checkpoint %s: skipped %d corrupt line(s) (line %s); "
            "the affected runs will re-execute on resume",
            self.path, report.lines_skipped, shown)


def frame_line(payload: str) -> str:
    """``<crc32 hex8> <payload>`` — the v1 line frame."""
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}"


def unframe_line(stripped: str) -> tuple[str, bool | None]:
    """Split a line into payload + CRC verdict.

    Returns ``(payload, True)`` for a framed line whose CRC matches,
    ``(payload, False)`` for a framed line whose CRC does not, and
    ``(line, None)`` for an unframed (legacy v0) line, which gets no
    integrity verification.
    """
    if len(stripped) > _FRAME_PREFIX and stripped[_FRAME_PREFIX - 1] == " ":
        prefix = stripped[:_FRAME_PREFIX - 1]
        if len(prefix) == 8 and all(c in "0123456789abcdef" for c in prefix):
            payload = stripped[_FRAME_PREFIX:]
            crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
            return payload, crc == int(prefix, 16)
    return stripped, None


def _decode_header(payload: str) -> tuple[int, str | None] | None:
    """Decode a v1 header line; ``None`` when it is not a header."""
    try:
        data = json.loads(payload)
        if not isinstance(data, dict) or "version" not in data:
            return None
        identity = data.get("identity")
        return int(data["version"]), None if identity is None else str(identity)
    except (json.JSONDecodeError, TypeError, ValueError):
        return None


def _decode_entry(payload: str) -> CheckpointEntry | None:
    try:
        data = json.loads(payload)
        raw_key = data["key"]
        key = (str(raw_key[0]), str(raw_key[1]), str(raw_key[2]),
               int(raw_key[3]))
        status = str(data["status"])
        if status == "ok":
            trace = data["trace"]
            return CheckpointEntry(key=key, status=status,
                                   trace_jsonl=(None if trace is None
                                                else str(trace)))
        if status == "failed":
            return CheckpointEntry(key=key, status=status,
                                   error=str(data.get("error", "")),
                                   attempts=int(data.get("attempts", 1)))
    except (json.JSONDecodeError, KeyError, IndexError, TypeError, ValueError):
        return None
    return None
