"""Chaos harness: the full campaign→analyze pipeline under injected faults.

This is the test substrate for the resilience subsystem: it runs a real
campaign in which (a) a seeded subset of runs raise — some on every
attempt (permanent failures that must end up quarantined), some only on
their first attempt (transient failures that retries must absorb) — and
(b) every surviving run's serialized trace is corrupted by a seeded
:class:`~repro.resilience.faults.FaultInjector` before being re-parsed
in recover mode and analysed.  The pipeline must complete end-to-end and
its accounting must reconcile: ``completed + quarantined == scheduled``,
and identical seeds must yield identical quarantine lists and
:class:`~repro.resilience.ingest.ParseReport` tallies.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.seeding import stable_seed as _mix
from repro.resilience.checkpoint import RunKey
from repro.resilience.faults import FAULT_KINDS, FaultInjector, InjectionReport
from repro.resilience.ingest import ParseReport

if TYPE_CHECKING:  # the campaign layer is imported lazily to avoid a cycle
    from repro.campaign.dataset import CampaignResult, RunResult
    from repro.campaign.runner import CampaignConfig


class ChaosRunError(RuntimeError):
    """The failure a chaotic run raises (stands in for app/modem crashes)."""


class SimulatedInterrupt(KeyboardInterrupt):
    """Raised to interrupt a campaign mid-flight (resume testing).

    A ``KeyboardInterrupt`` subclass on purpose: the retry loop only
    absorbs ``Exception``, so this propagates exactly like an operator's
    Ctrl-C would, leaving the checkpoint behind.
    """


@dataclass
class ChaosConfig:
    """Knobs of one chaos experiment (all effects are seeded)."""

    seed: int = 0
    fault_rate: float = 0.05
    fault_kinds: tuple[str, ...] = FAULT_KINDS
    run_failure_rate: float = 0.1
    transient_failure_rate: float = 0.1
    interrupt_after: int | None = None


@dataclass
class ChaosReport:
    """Everything a chaos run observed, for reconciliation checks."""

    result: CampaignResult
    parse_reports: dict[RunKey, ParseReport] = field(default_factory=dict)
    injections: dict[RunKey, InjectionReport] = field(default_factory=dict)

    def quarantine_keys(self) -> list[RunKey]:
        return [entry.key for entry in self.result.quarantined]

    def reconciles(self) -> bool:
        return self.result.reconciles()

    def total_parse_tallies(self) -> dict:
        """Aggregate recover-mode tallies over every analysed run."""
        parsed = sum(r.parsed_records for r in self.parse_reports.values())
        skipped = sum(r.skipped_records for r in self.parse_reports.values())
        by_kind: Counter = Counter()
        by_class: Counter = Counter()
        for report in self.parse_reports.values():
            by_kind.update(report.errors_by_kind)
            by_class.update(report.errors_by_class)
        return {
            "parsed_records": parsed,
            "skipped_records": skipped,
            "errors_by_kind": dict(by_kind),
            "errors_by_class": dict(by_class),
        }

    def total_injected(self) -> dict[str, int]:
        totals: Counter = Counter()
        for injection in self.injections.values():
            totals.update(injection.counts())
        return dict(totals)


class ChaosHarness:
    """Drive a campaign through seeded run failures and trace corruption."""

    def __init__(self, profiles, config: CampaignConfig,
                 chaos: ChaosConfig | None = None):
        self.profiles = profiles
        self.config = config
        self.chaos = chaos or ChaosConfig()
        self.parse_reports: dict[RunKey, ParseReport] = {}
        self.injections: dict[RunKey, InjectionReport] = {}
        self._attempts: dict[RunKey, int] = defaultdict(int)
        self._completed = 0

    def attempts_ledger(self) -> dict[RunKey, int]:
        """How many times each run key was attempted (telemetry checks)."""
        return dict(self._attempts)

    def run(self) -> ChaosReport:
        """Run the campaign; raises :class:`SimulatedInterrupt` only when
        the chaos config asked for one."""
        from repro.campaign.runner import CampaignRunner

        runner = CampaignRunner(self.profiles, self.config,
                                run_fn=self._chaotic_run_once)
        result = runner.run()
        return ChaosReport(result=result,
                           parse_reports=dict(self.parse_reports),
                           injections=dict(self.injections))

    # ------------------------------------------------------------------
    # The chaotic run function (CampaignRunner.run_fn)
    # ------------------------------------------------------------------

    def _chaotic_run_once(self, deployment, profile, device, point,
                          location_name, run_index, duration_s=300,
                          keep_trace=False) -> "RunResult":
        from repro.campaign.dataset import RunResult
        from repro.campaign.runner import run_once
        from repro.core.pipeline import analyze_trace
        from repro.traces.parser import parse_trace

        key: RunKey = (profile.name, deployment.area.name, location_name,
                       run_index)
        if self.chaos.interrupt_after is not None \
                and self._completed >= self.chaos.interrupt_after:
            raise SimulatedInterrupt(
                f"chaos interrupt after {self._completed} completed runs")
        attempt = self._attempts[key]
        self._attempts[key] += 1
        self._maybe_fail(key, attempt)

        clean = run_once(deployment, profile, device, point, location_name,
                         run_index, duration_s=duration_s, keep_trace=True)
        injector = FaultInjector(seed=_mix(self.chaos.seed, "fault", *key),
                                 rate=self.chaos.fault_rate,
                                 kinds=self.chaos.fault_kinds)
        corrupted, injection = injector.corrupt(clean.trace.to_jsonl())
        parsed = parse_trace(corrupted, errors="recover")
        self.parse_reports[key] = parsed.report
        self.injections[key] = injection
        self._completed += 1
        trace = parsed.trace
        return RunResult(metadata=trace.metadata,
                         analysis=analyze_trace(trace),
                         trace=trace if keep_trace else None,
                         point=point)

    def _maybe_fail(self, key: RunKey, attempt: int) -> None:
        """Seeded per-key failure decision: permanent or first-attempt-only."""
        draw = _mix(self.chaos.seed, "fail", *key) / 0xFFFFFFFF
        if draw < self.chaos.run_failure_rate:
            raise ChaosRunError(f"injected permanent failure at {key}")
        transient_band = self.chaos.run_failure_rate \
            + self.chaos.transient_failure_rate
        if draw < transient_band and attempt == 0:
            raise ChaosRunError(f"injected transient failure at {key}")


def run_chaos_campaign(profiles, config: CampaignConfig,
                       chaos: ChaosConfig | None = None) -> ChaosReport:
    """Convenience wrapper: build a harness, run it, return the report."""
    return ChaosHarness(profiles, config, chaos).run()
