"""Content-addressed analysis result cache.

Re-analysis is the dominant cost of ``repro campaign --resume`` and of
repeated ``repro profile``/figure runs: the checkpointed traces are
parsed and pushed through ``analyze_trace`` again even though nothing
about them changed.  :class:`AnalysisMemo` keys a pickled
:class:`~repro.core.pipeline.RunAnalysis` by the SHA-256 digest of the
trace's canonical JSONL serialisation — the exact text the v1
checkpoint format already stores per run — namespaced by the campaign
identity hash, so a warm cache lets resume and re-profile skip
re-analysis of unchanged traces entirely.

The cache is strictly best-effort and self-verifying:

* entries are written atomically (temp file + ``os.replace``), so a
  killed writer never leaves a partial entry behind;
* every entry carries a magic tag and a CRC32 of its pickle payload; a
  corrupt entry (bit rot, truncation, foreign file) is discarded with a
  warning and the analysis recomputed — never a crash;
* hits, misses and corrupt entries are counted into the ambient
  instrumentation (``analysis_memo_hits_total`` /
  ``analysis_memo_misses_total`` / ``analysis_memo_corrupt_total``), so
  ``repro profile`` can report cache effectiveness and CI can gate on
  it.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import zlib
from pathlib import Path

from repro.obs import get_instrumentation

logger = logging.getLogger(__name__)

__all__ = ["AnalysisMemo", "ArtifactStore", "sha256_digest", "trace_digest"]

#: Entry header: magic + newline, then 8 hex CRC chars + newline.
_MAGIC = b"RMEMO1\n"
_CRC_LEN = 9  # 8 hex digits + "\n"


def sha256_digest(data: bytes) -> str:
    """Content address of an arbitrary blob: its SHA-256 hex digest."""
    return hashlib.sha256(data).hexdigest()


def trace_digest(trace_jsonl: str) -> str:
    """Content address of one trace: SHA-256 over its canonical JSONL.

    ``SignalingTrace.to_jsonl`` is the canonical serialisation — it is
    what checkpoints embed, so on resume the digest comes straight from
    the checkpoint entry without re-parsing the trace.
    """
    return hashlib.sha256(trace_jsonl.encode("utf-8")).hexdigest()


class AnalysisMemo:
    """A directory of content-addressed pickled analysis results.

    ``identity`` namespaces entries by campaign (the
    :meth:`~repro.campaign.runner.CampaignRunner.campaign_identity`
    hash); ``None`` uses a shared namespace (the ``repro analyze``
    single-trace path).  Same layout either way::

        <directory>/<identity or '_'>/<sha256 digest>.pkl
    """

    def __init__(self, directory: str | Path, identity: str | None = None):
        self.identity = identity
        self.directory = Path(directory) / (identity if identity else "_")
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.pkl"

    def get(self, digest: str):
        """The cached analysis for ``digest``, or ``None`` (miss).

        A corrupt entry counts as a miss: it is unlinked, warned about
        once and counted into ``analysis_memo_corrupt_total``; the
        caller recomputes and overwrites it.
        """
        obs = get_instrumentation()
        path = self._path(digest)
        try:
            blob = path.read_bytes()
        except OSError:
            obs.registry.counter("analysis_memo_misses_total").inc()
            return None
        analysis = _decode(blob)
        if analysis is None:
            obs.registry.counter("analysis_memo_misses_total").inc()
            obs.registry.counter("analysis_memo_corrupt_total").inc()
            obs.events.emit("memo.corrupt", severity="warning",
                            path=str(path))
            logger.warning(
                "memo cache entry %s is corrupt; recomputing the analysis",
                path)
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            return None
        obs.registry.counter("analysis_memo_hits_total").inc()
        return analysis

    def put(self, digest: str, analysis) -> None:
        """Store ``analysis`` under ``digest`` (atomic, best-effort).

        A cache write failure (full disk, permissions) is logged at
        debug level and otherwise ignored: the memo is an accelerator,
        not a store of record.
        """
        payload = pickle.dumps(analysis, protocol=pickle.HIGHEST_PROTOCOL)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        blob = _MAGIC + f"{crc:08x}\n".encode("ascii") + payload
        path = self._path(digest)
        temp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            temp.write_bytes(blob)
            os.replace(temp, path)
        except OSError as error:
            logger.debug("memo cache write %s failed: %s", path, error)
            try:
                temp.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


class ArtifactStore:
    """A directory of content-addressed raw blobs, keyed by SHA-256.

    The campaign broker's artifact plane: workers ``PUT`` completion
    payloads and ``GET`` task payloads by digest instead of shipping
    them inline through the event spool.  Same durability discipline as
    the memo cache — atomic temp-file + ``os.replace`` writes, and
    every read is re-verified against its own digest (a blob that does
    not hash to its name is treated as absent and unlinked), so a
    half-written or bit-rotted artifact can never be served.

    Layout: ``<directory>/<digest[:2]>/<digest>`` (fan-out keeps any
    one directory small at campaign scale).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, digest: str) -> Path:
        return self.directory / digest[:2] / digest

    def has(self, digest: str) -> bool:
        return self._path(digest).exists()

    def get(self, digest: str) -> bytes | None:
        """The blob for ``digest``, or ``None`` (absent or corrupt)."""
        path = self._path(digest)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if sha256_digest(data) != digest:
            logger.warning("artifact %s does not hash to its name; "
                           "discarding the corrupt blob", path)
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
            return None
        return data

    def put(self, data: bytes, digest: str | None = None) -> str:
        """Store ``data`` under its digest; idempotent, returns the digest.

        When the caller supplies the ``digest`` it expects (the broker
        verifying an upload), a mismatch raises ``ValueError`` — the
        blob was mangled in flight and must not be stored.
        """
        actual = sha256_digest(data)
        if digest is not None and digest != actual:
            raise ValueError(
                f"artifact digest mismatch: body hashes to {actual}, "
                f"caller claimed {digest}")
        path = self._path(actual)
        if path.exists():
            return actual
        path.parent.mkdir(parents=True, exist_ok=True)
        temp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        temp.write_bytes(data)
        os.replace(temp, path)
        return actual

    def count(self) -> int:
        """How many blobs the store currently holds."""
        return sum(1 for child in self.directory.glob("??/*")
                   if child.is_file() and ".tmp" not in child.name)


def _decode(blob: bytes):
    """Verify and unpickle one entry; ``None`` on any corruption."""
    if not blob.startswith(_MAGIC):
        return None
    header_end = len(_MAGIC) + _CRC_LEN
    crc_field = blob[len(_MAGIC):header_end]
    payload = blob[header_end:]
    if len(crc_field) != _CRC_LEN or not crc_field.endswith(b"\n"):
        return None
    try:
        expected = int(crc_field[:-1], 16)
    except ValueError:
        return None
    if (zlib.crc32(payload) & 0xFFFFFFFF) != expected:
        return None
    try:
        return pickle.loads(payload)
    except Exception:  # noqa: BLE001 - any unpickling failure is corruption
        return None
