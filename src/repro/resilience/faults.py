"""Seeded fault injection for serialized traces.

A :class:`FaultInjector` deterministically corrupts JSONL trace text the
way real captures go bad in the field: truncated writes, dropped and
duplicated log lines, timestamps that jump backwards, and mangled
fields.  It is the test substrate for recover-mode ingestion and for the
chaos harness — identical seeds always produce identical corruption, so
quarantine lists and :class:`~repro.resilience.ingest.ParseReport`
tallies are reproducible.

Fault kinds (``FAULT_KINDS``):

* ``truncate`` — cut a line short until it is no longer valid JSON.
* ``drop`` — delete a record line outright.
* ``duplicate`` — repeat a record line (duplicate capture segment).
* ``reorder`` — move one record's timestamp before the trace start,
  violating the non-decreasing time order.
* ``mangle`` — corrupt a field (unknown kind tag, missing or
  non-numeric timestamp, broken payload value).

Only record lines are targeted; the ``{"meta": ...}`` header is left
alone so tallies stay attributable to injected faults.
"""

from __future__ import annotations

import json
import random
from collections import Counter
from dataclasses import dataclass, field

FAULT_KINDS = ("truncate", "drop", "duplicate", "reorder", "mangle")

_MANGLE_STRATEGIES = ("unknown_kind", "drop_time", "bad_time", "bad_payload")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: what was done to which original line."""

    kind: str
    line_number: int  # one-based line number in the *original* text

    def __str__(self) -> str:
        return f"{self.kind}@{self.line_number}"


@dataclass
class InjectionReport:
    """All faults one :meth:`FaultInjector.corrupt` call injected."""

    events: list[FaultEvent] = field(default_factory=list)

    @property
    def n_faults(self) -> int:
        return len(self.events)

    def counts(self) -> dict[str, int]:
        return dict(Counter(event.kind for event in self.events))

    def summary(self) -> str:
        if not self.events:
            return "no faults injected"
        parts = ", ".join(f"{kind} x{count}" for kind, count
                          in sorted(self.counts().items()))
        return f"injected {self.n_faults} faults ({parts})"


def _is_header(line: str) -> bool:
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return False
    return isinstance(data, dict) and "meta" in data


def _truncate_line(line: str) -> str:
    """Cut a line short, guaranteeing the remainder is invalid JSON."""
    cut = line[:max(1, len(line) // 2)]
    while cut:
        try:
            json.loads(cut)
        except json.JSONDecodeError:
            return cut
        cut = cut[:-1]
    return "{"


class FaultInjector:
    """Deterministically corrupt serialized traces.

    ``rate`` is the per-record-line corruption probability used by
    :meth:`corrupt`; :meth:`inject_one` places exactly one fault of a
    chosen kind, which is what the property suite uses to reconcile
    tallies fault-by-fault.
    """

    def __init__(self, seed: int = 0, rate: float = 0.05,
                 kinds: tuple[str, ...] = FAULT_KINDS):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        if not kinds:
            raise ValueError("at least one fault kind is required")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def corrupt(self, text: str) -> tuple[str, InjectionReport]:
        """Corrupt ~``rate`` of the record lines; return (text, report)."""
        rng = random.Random(self.seed)
        lines = text.splitlines()
        candidates = self._record_line_indices(lines)
        plan: dict[int, str] = {}
        for order, index in enumerate(candidates):
            if rng.random() >= self.rate:
                continue
            kinds = self.kinds
            if order == 0 and "reorder" in kinds:
                # The first record cannot arrive "before the trace":
                # reordering it is a no-op, so never plan one there.
                kinds = tuple(k for k in kinds if k != "reorder") or ("mangle",)
            plan[index] = rng.choice(kinds)
        return self._apply(lines, plan, rng)

    def inject_one(self, text: str, kind: str,
                   line_number: int | None = None) -> tuple[str, InjectionReport]:
        """Inject exactly one fault of ``kind``.

        ``line_number`` picks the (one-based) target line; by default a
        seeded choice among eligible record lines.  Returns the original
        text untouched (empty report) when no line is eligible.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        rng = random.Random(self.seed)
        lines = text.splitlines()
        candidates = self._record_line_indices(lines)
        if kind == "reorder":
            candidates = candidates[1:]  # need a preceding record
        if line_number is not None:
            index = line_number - 1
            if index not in candidates:
                raise ValueError(
                    f"line {line_number} is not an eligible record line")
            candidates = [index]
        if not candidates:
            return text, InjectionReport()
        return self._apply(lines, {rng.choice(candidates): kind}, rng)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _record_line_indices(lines: list[str]) -> list[int]:
        return [index for index, line in enumerate(lines)
                if line.strip() and not _is_header(line)]

    def _apply(self, lines: list[str], plan: dict[int, str],
               rng: random.Random) -> tuple[str, InjectionReport]:
        first_record_t = self._first_record_time(lines)
        report = InjectionReport()
        output: list[str] = []
        for index, line in enumerate(lines):
            kind = plan.get(index)
            if kind is None:
                output.append(line)
                continue
            report.events.append(FaultEvent(kind=kind, line_number=index + 1))
            if kind == "truncate":
                output.append(_truncate_line(line))
            elif kind == "drop":
                pass
            elif kind == "duplicate":
                output.extend([line, line])
            elif kind == "reorder":
                output.append(self._rewind_timestamp(line, first_record_t))
            elif kind == "mangle":
                output.append(self._mangle(line, rng))
        return "\n".join(output) + "\n", report

    @staticmethod
    def _first_record_time(lines: list[str]) -> float:
        for line in lines:
            if not line.strip() or _is_header(line):
                continue
            try:
                value = json.loads(line).get("t")
                return float(value)
            except (json.JSONDecodeError, AttributeError, TypeError, ValueError):
                continue
        return 0.0

    @staticmethod
    def _rewind_timestamp(line: str, first_record_t: float) -> str:
        data = json.loads(line)
        data["t"] = first_record_t - 1.0
        return json.dumps(data)

    @staticmethod
    def _mangle(line: str, rng: random.Random) -> str:
        from repro.traces.parser import parse_record

        data = json.loads(line)
        strategy = rng.choice(_MANGLE_STRATEGIES)
        mangled = dict(data)
        if strategy == "unknown_kind":
            mangled["kind"] = "__mangled__"
        elif strategy == "drop_time":
            mangled.pop("t", None)
        elif strategy == "bad_time":
            mangled["t"] = "not-a-time"
        else:  # bad_payload: break one payload value
            payload_keys = [k for k in mangled if k not in ("t", "kind")]
            if payload_keys:
                mangled[rng.choice(payload_keys)] = {"__mangled__": True}
        try:
            parse_record(mangled)
        except ValueError:
            return json.dumps(mangled)
        # Some payload fields tolerate arbitrary values (e.g. fields
        # coerced through str()); guarantee a parse failure regardless.
        mangled["kind"] = "__mangled__"
        return json.dumps(mangled)
