"""Parse accounting: what recover-mode ingestion kept, skipped and why.

A :class:`ParseReport` is filled in by
:func:`repro.traces.parser.parse_trace` as it walks a JSONL capture.  In
``errors="strict"`` mode it only ever records successes (the first
failure raises); in ``errors="recover"`` mode every malformed line is
quarantined as a :class:`QuarantinedLine` and tallied by record kind and
error class, so corrupt traces degrade gracefully *and auditable*:
``parsed_records + skipped_records`` always equals the number of record
lines presented, and chaos tests reconcile the tallies against the
faults they injected.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.resilience.errors import TraceParseError

#: Quarantined raw lines are clipped to this many characters.
_RAW_CLIP = 200


@dataclass(frozen=True)
class QuarantinedLine:
    """One skipped JSONL line: where it was, what it claimed, what failed."""

    line_number: int
    record_kind: str
    error_class: str
    message: str
    raw: str

    def __str__(self) -> str:
        return (f"line {self.line_number} [{self.record_kind}] "
                f"{self.error_class}: {self.message}")


@dataclass
class ParseReport:
    """Bookkeeping of one trace ingestion.

    ``errors_by_kind`` keys on the record kind an offending line claimed
    (``"json"`` for undecodable lines, ``"meta"`` for the header,
    ``"?"`` when no kind could be read); ``errors_by_class`` keys on the
    :mod:`repro.resilience.errors` exception class name.
    """

    total_lines: int = 0
    blank_lines: int = 0
    parsed_records: int = 0
    header_parsed: bool = False
    quarantine: list[QuarantinedLine] = field(default_factory=list)
    errors_by_kind: Counter = field(default_factory=Counter)
    errors_by_class: Counter = field(default_factory=Counter)

    @property
    def skipped_records(self) -> int:
        return len(self.quarantine)

    @property
    def ok(self) -> bool:
        """True when nothing was quarantined."""
        return not self.quarantine

    def record_success(self) -> None:
        self.parsed_records += 1

    def record_error(self, error: TraceParseError, raw: str) -> None:
        """Quarantine one malformed line and update the tallies."""
        kind = error.record_kind or "?"
        entry = QuarantinedLine(
            line_number=error.line_number or 0,
            record_kind=kind,
            error_class=type(error).__name__,
            message=error.message,
            raw=raw[:_RAW_CLIP],
        )
        self.quarantine.append(entry)
        self.errors_by_kind[kind] += 1
        self.errors_by_class[type(error).__name__] += 1

    def tallies(self) -> dict:
        """A plain-dict snapshot used by chaos tests and CLI output."""
        return {
            "total_lines": self.total_lines,
            "blank_lines": self.blank_lines,
            "parsed_records": self.parsed_records,
            "skipped_records": self.skipped_records,
            "errors_by_kind": dict(self.errors_by_kind),
            "errors_by_class": dict(self.errors_by_class),
        }

    def summary(self) -> str:
        """One line suitable for a CLI diagnostic."""
        if self.ok:
            return f"parsed {self.parsed_records} records, no errors"
        by_class = ", ".join(f"{name} x{count}" for name, count
                             in sorted(self.errors_by_class.items()))
        return (f"parsed {self.parsed_records} records, "
                f"skipped {self.skipped_records} ({by_class})")
