"""Command-line interface.

Three subcommands mirror the reproduction's main workflows::

    python -m repro campaign --operator OP_T --areas A1 --locations 6 --runs 3
        Run a scaled measurement campaign and print the summary report.

    python -m repro analyze trace.jsonl
        Analyse a saved signaling trace (loop detection, classification,
        performance) — the released-dataset workflow.

    python -m repro simulate --operator OP_V --area A9 --out trace.jsonl
        Simulate one stationary run and save its signaling trace.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import campaign_report, run_report
from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    OPERATORS,
    build_deployment,
    device,
    operator,
)
from repro.campaign.locations import sparse_locations
from repro.campaign.runner import run_once
from repro.core.pipeline import analyze_trace
from repro.traces.log import SignalingTrace


def _add_campaign_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "campaign", help="run a measurement campaign and print the report")
    parser.add_argument("--operator", action="append", dest="operators",
                        choices=sorted(OPERATORS),
                        help="operator(s) to include (default: all)")
    parser.add_argument("--areas", nargs="*", default=None,
                        help="restrict to these areas (default: all)")
    parser.add_argument("--locations", type=int, default=6,
                        help="locations per area (default 6)")
    parser.add_argument("--runs", type=int, default=4,
                        help="runs per location (default 4)")
    parser.add_argument("--duration", type=int, default=300,
                        help="run duration in seconds (default 300)")
    parser.add_argument("--device", default="OnePlus 12R",
                        help="phone model (default: OnePlus 12R)")


def _add_analyze_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "analyze", help="analyse a saved signaling trace (JSONL)")
    parser.add_argument("trace", help="path to a trace .jsonl file")


def _add_simulate_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "simulate", help="simulate one run and save the signaling trace")
    parser.add_argument("--operator", default="OP_T", choices=sorted(OPERATORS))
    parser.add_argument("--area", default=None,
                        help="area name (default: the operator's first area)")
    parser.add_argument("--device", default="OnePlus 12R")
    parser.add_argument("--duration", type=int, default=300)
    parser.add_argument("--location-seed", type=int, default=7,
                        help="seed choosing the test location")
    parser.add_argument("--location-index", type=int, default=0,
                        help="which sampled location to use")
    parser.add_argument("--run-index", type=int, default=0)
    parser.add_argument("--out", required=True, help="output .jsonl path")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An In-Depth Look into 5G ON-OFF "
                    "Loops in the Wild' (IMC 2025)")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_campaign_parser(subparsers)
    _add_analyze_parser(subparsers)
    _add_simulate_parser(subparsers)
    return parser


def _cmd_campaign(args: argparse.Namespace) -> int:
    names = args.operators or sorted(OPERATORS)
    profiles = [operator(name) for name in names]
    config = CampaignConfig(
        device_name=args.device,
        duration_s=args.duration,
        locations_per_area=args.locations,
        a1_locations=args.locations,
        runs_per_location=args.runs,
        a1_runs_per_location=args.runs,
        area_names=args.areas,
    )
    result = CampaignRunner(profiles, config).run()
    print(campaign_report(result))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    trace = SignalingTrace.load(args.trace)
    analysis = analyze_trace(trace)
    print(run_report(analysis))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    profile = operator(args.operator)
    area_name = args.area or profile.areas[0].name
    deployment = build_deployment(profile, area_name)
    spec = profile.area_spec(area_name)
    points = sparse_locations(spec.area, args.location_index + 1,
                              seed=args.location_seed)
    point = points[args.location_index]
    result = run_once(deployment, profile, device(args.device), point,
                      f"{area_name}-CLI", args.run_index,
                      duration_s=args.duration, keep_trace=True)
    result.trace.save(args.out)
    print(f"saved {len(result.trace)} records to {args.out}")
    print(run_report(result.analysis))
    return 0


_COMMANDS = {
    "campaign": _cmd_campaign,
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
