"""Command-line interface.

Five subcommands mirror the reproduction's main workflows::

    python -m repro campaign --operator OP_T --areas A1 --locations 6 --runs 3
        Run a scaled measurement campaign and print the summary report.
        Supports per-run retries (--max-retries), checkpointing
        (--checkpoint) and resuming an interrupted campaign (--resume).
        Supervision: ``--run-timeout`` gives every run a wall-clock
        budget (hung pool workers are killed and their keys retried or
        quarantined), ``--breaker-rebuilds`` / ``--breaker-failures``
        bound recovery before the campaign fails fast, and
        ``--no-fsync`` trades checkpoint durability for throughput.
        Observability: ``--metrics-out metrics.json`` (or ``.prom`` for
        Prometheus text), ``--trace-out spans.jsonl`` and ``--progress``
        (live stderr status line); on Ctrl-C *or SIGTERM* a final
        metrics/progress snapshot is flushed before the resume hint, so
        interrupted campaigns stay accountable.

    python -m repro analyze trace.jsonl [--errors recover]
        Analyse a saved signaling trace (loop detection, classification,
        performance) — the released-dataset workflow.  Corrupt input
        exits with code 1 and a one-line diagnostic in strict mode, or
        degrades gracefully with ``--errors recover``.

    python -m repro simulate --operator OP_V --area A9 --out trace.jsonl
        Simulate one stationary run and save its signaling trace.

    python -m repro faults trace.jsonl --out corrupted.jsonl --rate 0.05
        Deterministically corrupt a saved trace (the field-capture fault
        model: truncation, drops, duplicates, reordering, mangling) and
        optionally verify that recover-mode ingestion absorbs it.

    python -m repro profile --seed 42
        Run a seeded, instrumented mini-campaign and print the
        per-stage timing table plus the metrics reconciliation check
        (exit code 1 when the telemetry does not reconcile).

    python -m repro worker --queue-dir QDIR
        Attach to a durable campaign task queue and drain it: claim
        runs under heartbeated leases, execute them, record fenced
        completions.  Start N of these (any host sharing the spool
        directory) against ``repro campaign --scheduler queue
        --queue-dir QDIR``; kill any of them at any time — expired
        leases are stolen by the survivors without double-completion.
        Every worker flushes its events/spans/metrics to a durable
        telemetry spool under ``QDIR/telemetry/``.  With ``--broker
        URL`` instead of ``--queue-dir`` the worker drains a remote
        ``repro broker serve`` over HTTP — no shared filesystem; exit
        75 (EX_TEMPFAIL) means the broker stayed unreachable and the
        worker should simply be restarted.

    python -m repro broker serve --queue-dir QDIR [--port N]
        Own a campaign queue directory and serve the task-queue verbs
        (submit/seal/claim/heartbeat/complete/status) over HTTP with a
        broker-authoritative lease clock, plus a content-addressed
        artifact plane for task/outcome payloads.  Point the
        coordinator (``repro campaign --broker URL``) and any number of
        cross-host workers (``repro worker --broker URL``) at it.  The
        bound URL is printed on stdout (``--port 0`` picks a free
        port); SIGTERM drains gracefully — mutating verbs get 503
        while in-flight state is already fsynced — and a restarted
        broker on the same queue directory resumes the campaign.

    python -m repro status QDIR [--json|--watch [SECONDS]|--serve PORT]
        Live view of a queue campaign's telemetry plane: worker
        liveness, lease table, queue depth/throughput/ETA, merged
        worker counters and recent events — aggregated read-only from
        the queue spool, heartbeat files and telemetry spools, so it
        can run beside (or after) a live campaign.  ``--serve PORT``
        exposes ``/metrics`` (Prometheus text) and ``/status`` (JSON)
        over stdlib HTTP for mid-campaign scraping.

    python -m repro stream serve [--metrics-port 0] [--events-out ev.jsonl]
        Run the live ingest server: thousands of concurrent device
        streams over length-framed JSONL, each through a bounded-memory
        incremental analyzer; loop onsets/ends surface as ``stream.*``
        events and Prometheus ``/metrics``.  The bound HOST:PORT is the
        first stdout line (then the metrics URL, with --metrics-port).

    python -m repro stream replay HOST:PORT trace1.jsonl trace2.jsonl ...
        Replay saved traces against a running ingest server, multiplexed
        over a few connections, and print each stream's verdict as JSON.

``--log-level``/``--log-json`` on campaign, worker and profile mirror
the structured event stream (claims, steals, retries, quarantines,
breaker trips, …) to stderr, replacing the ad-hoc logging warnings.

Interrupts: Ctrl-C and SIGTERM share one graceful-drain path (the
checkpoint is flushed, a resume hint printed) and exit ``128 +
signum`` — 130 for SIGINT, 143 for SIGTERM.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.analysis.report import campaign_report, run_report
from repro.campaign import (
    CampaignConfig,
    CampaignRunner,
    OPERATORS,
    build_deployment,
    device,
    operator,
)
from repro.campaign.locations import sparse_locations
from repro.campaign.runner import run_once
from repro.core.pipeline import analyze_trace
from repro.obs import (
    Instrumentation,
    NULL_INSTRUMENTATION,
    SEVERITIES,
    StderrEventSink,
    StderrProgressReporter,
    attach_logging_bridge,
    make_instrumentation,
)
from repro.obs.profile import run_profile
from repro.resilience.checkpoint import CheckpointMismatchError
from repro.resilience.faults import FAULT_KINDS, FaultInjector
from repro.resilience.memo import AnalysisMemo, trace_digest
from repro.resilience.supervision import (
    CircuitBreakerOpen,
    ShutdownRequested,
    graceful_shutdown,
)
from repro.traces.parser import TraceParseError, parse_trace


def _add_campaign_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "campaign", help="run a measurement campaign and print the report")
    parser.add_argument("--operator", action="append", dest="operators",
                        choices=sorted(OPERATORS),
                        help="operator(s) to include (default: all)")
    parser.add_argument("--areas", nargs="*", default=None,
                        help="restrict to these areas (default: all)")
    parser.add_argument("--locations", type=int, default=6,
                        help="locations per area (default 6)")
    parser.add_argument("--runs", type=int, default=4,
                        help="runs per location (default 4)")
    parser.add_argument("--duration", type=int, default=300,
                        help="run duration in seconds (default 300)")
    parser.add_argument("--device", default="OnePlus 12R",
                        help="phone model (default: OnePlus 12R)")
    parser.add_argument("--max-retries", type=int, default=0,
                        help="retries per failed run before quarantining it "
                             "(default 0)")
    parser.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="append-only JSONL checkpoint of finished runs")
    parser.add_argument("--resume", action="store_true",
                        help="resume completed runs from --checkpoint "
                             "instead of re-simulating them")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (locations, retry jitter; "
                             "default 0)")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip the per-append fsync on the checkpoint "
                             "(faster, but an acknowledged run may not "
                             "survive power loss)")
    parser.add_argument("--breaker-rebuilds", type=int, default=3,
                        metavar="N",
                        help="worker-pool rebuilds tolerated before the "
                             "campaign fails fast (default 3)")
    parser.add_argument("--breaker-failures", type=int, default=0,
                        metavar="N",
                        help="consecutive run failures before the campaign "
                             "fails fast (default 0 = disabled)")
    parser.add_argument("--scheduler", choices=("pool", "queue", "broker"),
                        default="pool",
                        help="execution backend: 'pool' = in-host worker "
                             "processes (--workers), 'queue' = durable "
                             "on-disk task queue drained by independent "
                             "`repro worker` processes, 'broker' = the "
                             "same queue served over HTTP by `repro "
                             "broker serve` (default pool)")
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="task-queue spool directory "
                             "(required with --scheduler queue)")
    parser.add_argument("--broker", default=None, metavar="URL",
                        help="campaign broker URL (e.g. "
                             "http://127.0.0.1:8737); implies "
                             "--scheduler broker")
    _add_broker_fault_flags(parser)
    parser.add_argument("--lease-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="work-claim lease duration; a worker silent "
                             "for this long has its run stolen "
                             "(default 30)")
    parser.add_argument("--queue-stall", type=float, default=60.0,
                        metavar="SECONDS",
                        help="fail fast when the queue sees no activity "
                             "and no live workers for this long "
                             "(0 disables; default 60)")
    parser.add_argument("--memo-dir", default=None, metavar="DIR",
                        help="content-addressed analysis cache; repeated "
                             "campaigns and --resume skip re-analysis of "
                             "unchanged traces")
    _add_workers_flag(parser)
    _add_run_timeout_flag(parser)
    _add_observability_flags(parser)


def _add_broker_fault_flags(parser) -> None:
    parser.add_argument("--broker-fault-rate", type=float, default=0.0,
                        metavar="RATE",
                        help="chaos testing: probability each broker "
                             "request/response is dropped, duplicated, "
                             "delayed, 503'd or mangled client-side "
                             "(seeded; default 0 = off)")
    parser.add_argument("--broker-fault-seed", type=int, default=0,
                        metavar="SEED",
                        help="seed for --broker-fault-rate (default 0)")


def _add_worker_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "worker", help="drain a durable campaign task queue "
                       "(start N of these against --scheduler queue "
                       "or a `repro broker serve` URL)")
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="task-queue spool directory shared with the "
                             "campaign coordinator (same-host mode; "
                             "exactly one of --queue-dir/--broker)")
    parser.add_argument("--broker", default=None, metavar="URL",
                        help="campaign broker URL to drain over HTTP "
                             "(cross-host mode)")
    parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                        help="durable telemetry spool directory (broker "
                             "mode has no shared queue dir; default: "
                             "<queue-dir>/telemetry, or none)")
    _add_broker_fault_flags(parser)
    parser.add_argument("--worker-id", default=None,
                        help="stable worker identity "
                             "(default: <hostname>-<pid>)")
    parser.add_argument("--lease", type=float, default=None,
                        metavar="SECONDS",
                        help="lease duration per claim; heartbeats renew "
                             "it every lease/3 (default: the campaign's "
                             "--lease-timeout from the spool header)")
    parser.add_argument("--poll", type=float, default=0.05,
                        metavar="SECONDS",
                        help="idle poll interval (default 0.05)")
    parser.add_argument("--attach-timeout", type=float, default=60.0,
                        metavar="SECONDS",
                        help="how long to wait for the spool to appear "
                             "before exiting 1 (default 60)")
    parser.add_argument("--fail-after", type=int, default=None, metavar="N",
                        help="fault injection: SIGKILL this worker right "
                             "after its N-th claim (steal/chaos testing)")
    _add_log_flags(parser)


def _add_broker_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "broker", help="campaign broker: serve a task queue over HTTP")
    actions = parser.add_subparsers(dest="broker_command", required=True)
    serve = actions.add_parser(
        "serve", help="own a queue directory and serve the queue verbs "
                      "+ artifact plane over HTTP")
    serve.add_argument("--queue-dir", required=True, metavar="DIR",
                       help="queue directory this broker owns (spool + "
                            "artifacts); restarting against the same "
                            "directory resumes the campaign")
    serve.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="TCP port to bind (default 0 = pick a free "
                            "one; the bound URL is printed on stdout)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-request socket timeout; a stalled "
                            "client can never wedge the broker "
                            "(default 30)")
    serve.add_argument("--drain-grace", type=float, default=1.0,
                       metavar="SECONDS",
                       help="on SIGTERM/SIGINT, keep answering 503 to "
                            "mutating verbs for this long before "
                            "stopping (default 1)")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip the per-append fsync on the spool "
                            "(faster, weaker durability)")
    _add_log_flags(serve)


def _add_status_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "status", help="live view of a queue campaign's telemetry plane")
    parser.add_argument("queue_dir", metavar="QUEUE_DIR",
                        help="task-queue spool directory of the campaign")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the full machine-readable view "
                             "instead of the terminal rendering")
    parser.add_argument("--watch", nargs="?", const=2.0, type=float,
                        default=None, metavar="SECONDS",
                        help="refresh continuously every SECONDS "
                             "(default 2) until interrupted")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="serve /metrics (Prometheus text) and "
                             "/status (JSON) over HTTP instead of "
                             "printing (0 picks a free port)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for --serve "
                             "(default 127.0.0.1)")
    parser.add_argument("--events", type=int, default=20, metavar="N",
                        help="recent events to include (default 20)")
    parser.add_argument("--min-severity", choices=tuple(SEVERITIES),
                        default="debug",
                        help="lowest event severity to include "
                             "(default debug)")


def _add_workers_flag(parser) -> None:
    parser.add_argument("--workers", type=int, default=1,
                        help="run the campaign over N worker processes "
                             "(results are bit-identical to --workers 1 "
                             "for the same seed; default 1)")


def _add_run_timeout_flag(parser) -> None:
    parser.add_argument("--run-timeout", type=float, default=None,
                        metavar="SECONDS", dest="run_timeout",
                        help="wall-clock budget per run; a run that blows "
                             "it is retried/quarantined as a timeout, and "
                             "hung pool workers are killed and respawned")


def _add_observability_flags(parser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the metrics snapshot here (JSON, or "
                             "Prometheus text for .prom/.txt paths)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the span tree here (JSONL, one span "
                             "per line)")
    parser.add_argument("--progress", action="store_true",
                        help="live progress (rate/ETA/tallies) on stderr")
    _add_log_flags(parser)


def _add_log_flags(parser) -> None:
    parser.add_argument("--log-level", choices=tuple(SEVERITIES),
                        default=None, metavar="LEVEL",
                        help="mirror structured events at LEVEL or above "
                             "(debug/info/warning/error) to stderr; also "
                             "captures stdlib logging warnings into the "
                             "event stream")
    parser.add_argument("--log-json", action="store_true",
                        help="render the mirrored events as JSON lines "
                             "instead of human-readable ones "
                             "(implies --log-level info)")


def _add_analyze_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "analyze", help="analyse a saved signaling trace (JSONL)")
    parser.add_argument("trace", help="path to a trace .jsonl file")
    parser.add_argument("--errors", choices=("strict", "recover"),
                        default="strict",
                        help="strict: fail on the first malformed line; "
                             "recover: skip malformed lines and report them")
    parser.add_argument("--memo-dir", default=None, metavar="DIR",
                        help="content-addressed analysis cache; re-analysing "
                             "an unchanged trace becomes a cache hit")


def _add_simulate_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "simulate", help="simulate one run and save the signaling trace")
    parser.add_argument("--operator", default="OP_T", choices=sorted(OPERATORS))
    parser.add_argument("--area", default=None,
                        help="area name (default: the operator's first area)")
    parser.add_argument("--device", default="OnePlus 12R")
    parser.add_argument("--duration", type=int, default=300)
    parser.add_argument("--location-seed", type=int, default=7,
                        help="seed choosing the test location")
    parser.add_argument("--location-index", type=int, default=0,
                        help="which sampled location to use")
    parser.add_argument("--run-index", type=int, default=0)
    parser.add_argument("--out", required=True, help="output .jsonl path")


def _add_faults_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "faults", help="deterministically corrupt a saved trace "
                       "(fault-injection harness)")
    parser.add_argument("trace", help="path to a clean trace .jsonl file")
    parser.add_argument("--out", default=None,
                        help="where to write the corrupted trace "
                             "(default: dry run)")
    parser.add_argument("--rate", type=float, default=0.05,
                        help="per-record corruption probability (default 0.05)")
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection seed (default 0)")
    parser.add_argument("--kinds", nargs="*", choices=FAULT_KINDS,
                        default=None,
                        help=f"fault kinds to inject (default: all of "
                             f"{', '.join(FAULT_KINDS)})")
    parser.add_argument("--verify", action="store_true",
                        help="re-parse the corrupted trace in recover mode "
                             "and print the ingestion report")


def _add_profile_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "profile", help="run a seeded instrumented mini-campaign and "
                        "print the per-stage timing table")
    parser.add_argument("--seed", type=int, default=42,
                        help="campaign seed (default 42)")
    parser.add_argument("--operator", action="append", dest="operators",
                        choices=sorted(OPERATORS),
                        help="operator(s) to include (default: all)")
    parser.add_argument("--areas", nargs="*", default=None,
                        help="restrict to these areas (default: all)")
    parser.add_argument("--locations", type=int, default=2,
                        help="locations per area (default 2)")
    parser.add_argument("--runs", type=int, default=2,
                        help="runs per location (default 2)")
    parser.add_argument("--duration", type=int, default=60,
                        help="run duration in seconds (default 60)")
    parser.add_argument("--max-retries", type=int, default=0,
                        help="retries per failed run (default 0)")
    parser.add_argument("--memo-dir", default=None, metavar="DIR",
                        help="content-addressed analysis cache; a warm "
                             "cache makes re-profiling pure cache hits "
                             "(see the 'analysis memo' summary line)")
    _add_workers_flag(parser)
    _add_run_timeout_flag(parser)
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="also write the metrics snapshot here (JSON, "
                             "or Prometheus text for .prom/.txt paths)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="also write the span tree here (JSONL)")
    _add_log_flags(parser)


def _add_stream_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "stream", help="live stream ingest: serve or replay device "
                       "streams for online loop detection")
    actions = parser.add_subparsers(dest="stream_command", required=True)
    serve = actions.add_parser(
        "serve", help="run the asyncio ingest server (length-framed "
                      "JSONL, live loop detection per stream)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="TCP port to bind (default 0 = pick a free "
                            "one; the bound address is printed on stdout)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="also serve Prometheus /metrics on this port "
                            "(0 picks a free one; the metrics URL is the "
                            "second stdout line)")
    serve.add_argument("--horizon", type=int, default=None, metavar="N",
                       help="per-stream dedup-ring horizon bounding "
                            "memory and the longest detectable period "
                            "(default 4096; 0 = unbounded)")
    serve.add_argument("--min-repetitions", type=int, default=2,
                       metavar="K",
                       help="repetitions required to call a loop "
                            "(default 2)")
    serve.add_argument("--max-streams", type=int, default=10_000,
                       metavar="N",
                       help="cap on concurrently open streams "
                            "(default 10000)")
    serve.add_argument("--on-disorder", choices=("strict", "recover"),
                       default="recover",
                       help="out-of-order records: recover clamps and "
                            "counts them (default), strict drops the "
                            "stream with an error frame")
    serve.add_argument("--events-out", default=None, metavar="PATH",
                       help="append stream.* events (loop onsets/ends) "
                            "as JSONL here")
    _add_log_flags(serve)
    replay = actions.add_parser(
        "replay", help="replay saved traces against a running ingest "
                       "server and print the verdicts as JSON")
    replay.add_argument("address", metavar="HOST:PORT",
                        help="ingest server address (the line `stream "
                             "serve` printed on stdout)")
    replay.add_argument("traces", nargs="+", metavar="TRACE",
                        help="trace .jsonl files; each becomes one "
                             "stream named after the file stem")
    replay.add_argument("--connections", type=int, default=4, metavar="N",
                        help="TCP connections to multiplex the streams "
                             "over (default 4)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An In-Depth Look into 5G ON-OFF "
                    "Loops in the Wild' (IMC 2025)")
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_campaign_parser(subparsers)
    _add_analyze_parser(subparsers)
    _add_simulate_parser(subparsers)
    _add_faults_parser(subparsers)
    _add_profile_parser(subparsers)
    _add_worker_parser(subparsers)
    _add_broker_parser(subparsers)
    _add_status_parser(subparsers)
    _add_stream_parser(subparsers)
    return parser


# ----------------------------------------------------------------------
# Observability plumbing shared by campaign/profile
# ----------------------------------------------------------------------


def _build_instrumentation(args: argparse.Namespace) -> Instrumentation:
    """A live bundle when any observability flag is set, else the no-op."""
    wants_progress = getattr(args, "progress", False)
    if not (args.metrics_out or args.trace_out or wants_progress
            or _wants_event_stream(args)):
        return NULL_INSTRUMENTATION
    progress = StderrProgressReporter() if wants_progress else None
    obs = make_instrumentation(progress=progress)
    _attach_event_stream(obs, args)
    return obs


def _wants_event_stream(args: argparse.Namespace) -> bool:
    return getattr(args, "log_level", None) is not None \
        or getattr(args, "log_json", False)


def _attach_event_stream(obs: Instrumentation,
                         args: argparse.Namespace) -> None:
    """Mirror structured events to stderr per ``--log-level/--log-json``.

    Also routes stdlib ``logging`` warnings from the ``repro`` loggers
    into the event stream, so the old ad-hoc warnings show up exactly
    once, in the structured format, instead of as loose stderr lines.
    """
    if not (obs.events.enabled and _wants_event_stream(args)):
        return
    level = getattr(args, "log_level", None) or "info"
    obs.events.add_sink(StderrEventSink(
        min_severity=level, json_mode=getattr(args, "log_json", False)))
    attach_logging_bridge(obs.events)


def _flush_observability(obs: Instrumentation,
                         args: argparse.Namespace) -> None:
    """Write the requested metrics/span exports (also on interrupt)."""
    if not obs.enabled:
        return
    if args.metrics_out:
        if args.metrics_out.endswith((".prom", ".txt")):
            obs.registry.export_prometheus(args.metrics_out)
        else:
            obs.registry.export_json(args.metrics_out)
        print(f"wrote metrics snapshot to {args.metrics_out}",
              file=sys.stderr)
    if args.trace_out:
        obs.tracer.export_jsonl(args.trace_out)
        print(f"wrote {len(obs.tracer.finished)} spans to {args.trace_out}",
              file=sys.stderr)


def _final_progress_snapshot(obs: Instrumentation) -> None:
    snapshot = obs.progress.snapshot()
    if snapshot:
        print("progress snapshot: "
              + " ".join(f"{key}={value:g}" if isinstance(value, float)
                         else f"{key}={value}"
                         for key, value in snapshot.items()),
              file=sys.stderr)


def _cmd_campaign(args: argparse.Namespace) -> int:
    names = args.operators or sorted(OPERATORS)
    profiles = [operator(name) for name in names]
    scheduler = args.scheduler
    if args.broker and scheduler == "pool":
        scheduler = "broker"  # --broker URL implies the broker backend
    if scheduler == "broker" and not args.broker:
        print("error: --scheduler broker requires --broker URL",
              file=sys.stderr)
        return 2
    if scheduler == "queue" and not args.queue_dir:
        print("error: --scheduler queue requires --queue-dir",
              file=sys.stderr)
        return 2
    config = CampaignConfig(
        device_name=args.device,
        duration_s=args.duration,
        locations_per_area=args.locations,
        a1_locations=args.locations,
        runs_per_location=args.runs,
        a1_runs_per_location=args.runs,
        area_names=args.areas,
        seed=args.seed,
        max_retries=args.max_retries,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        workers=args.workers,
        run_timeout_s=args.run_timeout,
        checkpoint_fsync=not args.no_fsync,
        breaker_max_rebuilds=args.breaker_rebuilds,
        breaker_max_consecutive_failures=args.breaker_failures,
        scheduler=scheduler,
        queue_dir=args.queue_dir,
        lease_timeout_s=args.lease_timeout,
        queue_stall_s=args.queue_stall,
        memo_dir=args.memo_dir,
        broker_url=args.broker,
        broker_fault_rate=args.broker_fault_rate,
        broker_fault_seed=args.broker_fault_seed,
    )
    obs = _build_instrumentation(args)
    try:
        with graceful_shutdown():
            result = CampaignRunner(profiles, config, obs=obs).run()
    except (KeyboardInterrupt, ShutdownRequested) as stop:
        # Flush what the interrupted campaign did accomplish *before*
        # the resume hint, so partial runs are accountable.  Ctrl-C
        # (SIGINT) and SIGTERM share this drain-flush-resume path and
        # exit 128 + signum (130 / 143).
        _flush_observability(obs, args)
        _final_progress_snapshot(obs)
        _print_resume_hint(args, "interrupted")
        return 128 + stop.signum if isinstance(stop, ShutdownRequested) \
            else 130
    except CircuitBreakerOpen as error:
        # The failure pattern looked systemic; surface the breaker's
        # diagnostic summary and where to resume once it is fixed.
        _flush_observability(obs, args)
        _final_progress_snapshot(obs)
        print(f"error: {error}", file=sys.stderr)
        _print_resume_hint(args, "stopped early")
        return 1
    except CheckpointMismatchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    _flush_observability(obs, args)
    print(campaign_report(result))
    return 0


def _print_resume_hint(args: argparse.Namespace, what: str) -> None:
    if args.checkpoint:
        print(f"{what}; resume with --checkpoint {args.checkpoint} "
              f"--resume", file=sys.stderr)
    else:
        print(f"{what} (no checkpoint; rerun with --checkpoint to "
              "make campaigns resumable)", file=sys.stderr)


def _read_trace_text(path_arg: str) -> str | None:
    """Read a trace file, printing a one-line diagnostic on failure."""
    try:
        return Path(path_arg).read_text(encoding="utf-8")
    except OSError as error:
        reason = error.strerror or error
        print(f"error: cannot read trace {path_arg}: {reason}",
              file=sys.stderr)
        return None


def _cmd_analyze(args: argparse.Namespace) -> int:
    text = _read_trace_text(args.trace)
    if text is None:
        return 1
    try:
        parsed = parse_trace(text, errors=args.errors)
    except TraceParseError as error:
        print(f"error: corrupt trace {args.trace}: {error} "
              f"(use --errors recover to skip malformed lines)",
              file=sys.stderr)
        return 1
    if args.errors == "recover" and not parsed.report.ok:
        print(f"recovered: {parsed.report.summary()}")
    if args.memo_dir:
        memo = AnalysisMemo(args.memo_dir)
        digest = trace_digest(parsed.trace.to_jsonl())
        analysis = memo.get(digest)
        if analysis is None:
            analysis = analyze_trace(parsed.trace)
            memo.put(digest, analysis)
    else:
        analysis = analyze_trace(parsed.trace)
    print(run_report(analysis))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    profile = operator(args.operator)
    area_name = args.area or profile.areas[0].name
    deployment = build_deployment(profile, area_name)
    spec = profile.area_spec(area_name)
    points = sparse_locations(spec.area, args.location_index + 1,
                              seed=args.location_seed)
    point = points[args.location_index]
    result = run_once(deployment, profile, device(args.device), point,
                      f"{area_name}-CLI", args.run_index,
                      duration_s=args.duration, keep_trace=True)
    result.trace.save(args.out)
    print(f"saved {len(result.trace)} records to {args.out}")
    print(run_report(result.analysis))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    text = _read_trace_text(args.trace)
    if text is None:
        return 1
    kinds = tuple(args.kinds) if args.kinds else FAULT_KINDS
    injector = FaultInjector(seed=args.seed, rate=args.rate, kinds=kinds)
    corrupted, report = injector.corrupt(text)
    print(report.summary())
    if args.out:
        Path(args.out).write_text(corrupted, encoding="utf-8")
        print(f"wrote corrupted trace to {args.out}")
    if args.verify:
        parsed = parse_trace(corrupted, errors="recover")
        print(f"recover-mode parse: {parsed.report.summary()}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    obs = make_instrumentation()
    _attach_event_stream(obs, args)
    report = run_profile(
        seed=args.seed,
        operator_names=args.operators,
        area_names=args.areas,
        locations=args.locations,
        runs=args.runs,
        duration_s=args.duration,
        max_retries=args.max_retries,
        workers=args.workers,
        run_timeout_s=args.run_timeout,
        obs=obs,
        memo_dir=args.memo_dir,
    )
    _flush_observability(report.obs, args)
    print(report.summary())
    if not report.reconciles():
        print("error: metrics reconciliation failed "
              "(scheduled != completed + quarantined)", file=sys.stderr)
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.campaign.worker import QueueWorker, WorkerConfig

    if (args.queue_dir is None) == (args.broker is None):
        print("error: exactly one of --queue-dir and --broker is required",
              file=sys.stderr)
        return 2
    kwargs = {"queue_dir": args.queue_dir, "broker_url": args.broker,
              "lease_s": args.lease,
              "poll_s": args.poll, "attach_timeout_s": args.attach_timeout,
              "fail_after": args.fail_after,
              "broker_fault_rate": args.broker_fault_rate,
              "broker_fault_seed": args.broker_fault_seed,
              "telemetry_dir": args.telemetry_dir}
    if args.worker_id:
        kwargs["worker_id"] = args.worker_id
    obs = make_instrumentation()
    _attach_event_stream(obs, args)
    worker = QueueWorker(WorkerConfig(**kwargs), obs=obs)
    try:
        with graceful_shutdown():
            return worker.run()
    except (KeyboardInterrupt, ShutdownRequested) as stop:
        # Nothing to flush: an outstanding lease simply expires and is
        # stolen; completed work is already durable in the spool.
        print(f"worker {worker.config.worker_id} stopping "
              f"({worker.completed} completed)", file=sys.stderr)
        return 128 + stop.signum if isinstance(stop, ShutdownRequested) \
            else 130


def _cmd_broker(args: argparse.Namespace) -> int:
    import threading

    from repro.campaign.broker import CampaignBroker, serve_broker

    obs = make_instrumentation()
    _attach_event_stream(obs, args)
    broker = CampaignBroker(args.queue_dir, fsync=not args.no_fsync,
                            obs=obs)
    server = serve_broker(broker, args.port, host=args.host,
                          request_timeout_s=args.request_timeout)
    host, port = server.server_address[:2]
    # The URL goes to stdout so scripts (CI smoke) can capture it; the
    # human-facing chatter stays on stderr.
    print(f"http://{host}:{port}", flush=True)
    print(f"broker serving http://{host}:{port} "
          f"(queue {args.queue_dir}; Ctrl-C / SIGTERM drains and stops)",
          file=sys.stderr)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with graceful_shutdown():
            while thread.is_alive():
                time.sleep(0.2)
        return 0
    except (KeyboardInterrupt, ShutdownRequested) as stop:
        # Graceful drain: mutating verbs get a retryable 503 for the
        # grace window (clients back off across the restart), then the
        # server stops.  The spool is fsynced per append, so there is
        # nothing else to flush — the queue directory IS the state.
        broker.begin_drain()
        time.sleep(max(0.0, args.drain_grace))
        print(f"broker drained and stopped; campaign state is durable "
              f"at {args.queue_dir} — restart `repro broker serve "
              f"--queue-dir {args.queue_dir}` to resume", file=sys.stderr)
        return 128 + stop.signum if isinstance(stop, ShutdownRequested) \
            else 130
    finally:
        server.shutdown()
        server.server_close()


def _render_status_once(aggregator, args: argparse.Namespace) -> str:
    from repro.obs.aggregate import render_status

    view = aggregator.view(recent_events=args.events,
                           min_severity=args.min_severity)
    if args.as_json:
        return view.to_json()
    return render_status(view)


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.obs.aggregate import CampaignAggregator, serve_status

    aggregator = CampaignAggregator(args.queue_dir)
    if args.serve is not None:
        server = serve_status(aggregator, args.serve, host=args.host)
        host, port = server.server_address[:2]
        print(f"serving http://{host}:{port}/status and "
              f"http://{host}:{port}/metrics (Ctrl-C stops)",
              file=sys.stderr)
        try:
            with graceful_shutdown():
                server.serve_forever()
        except (KeyboardInterrupt, ShutdownRequested):
            pass
        finally:
            server.server_close()
        return 0
    if args.watch is not None:
        interval = max(0.1, args.watch)
        try:
            with graceful_shutdown():
                while True:
                    if aggregator.refresh():
                        if not args.as_json and sys.stdout.isatty():
                            # Clear + home, like watch(1), only when a
                            # human is looking at it.
                            print("\x1b[2J\x1b[H", end="")
                        print(_render_status_once(aggregator, args),
                              flush=True)
                    else:
                        print(f"waiting for a task-queue spool at "
                              f"{args.queue_dir} …", file=sys.stderr)
                    time.sleep(interval)
        except (KeyboardInterrupt, ShutdownRequested):
            return 0
    if not aggregator.refresh():
        print(f"error: no task-queue spool at {args.queue_dir} "
              f"(is this the campaign's --queue-dir?)", file=sys.stderr)
        return 1
    print(_render_status_once(aggregator, args))
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    if args.stream_command == "serve":
        return _cmd_stream_serve(args)
    return _cmd_stream_replay(args)


def _cmd_stream_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import threading

    from repro.serve import StreamIngestServer, serve_metrics

    obs = make_instrumentation()
    _attach_event_stream(obs, args)
    events_file = None
    if args.events_out:
        events_file = open(args.events_out, "a", encoding="utf-8")

        def _jsonl_sink(event) -> None:
            events_file.write(json.dumps(event.to_dict(),
                                         separators=(",", ":")) + "\n")
            events_file.flush()

        obs.events.add_sink(_jsonl_sink)
    horizon = args.horizon
    if horizon is None:
        from repro.serve.server import DEFAULT_HORIZON
        horizon = DEFAULT_HORIZON
    server = StreamIngestServer(
        host=args.host, port=args.port,
        horizon=horizon or None,  # 0 -> unbounded
        min_repetitions=args.min_repetitions,
        max_streams=args.max_streams,
        on_disorder=args.on_disorder,
        obs=obs,
    )
    metrics_server = None

    async def _run() -> None:
        nonlocal metrics_server
        await server.start()
        host, port = server.address
        # Machine-readable lines first (CI smoke captures them); the
        # human-facing chatter stays on stderr, like `broker serve`.
        print(f"{host}:{port}", flush=True)
        if args.metrics_port is not None:
            metrics_server = serve_metrics(obs.registry, args.metrics_port,
                                           host=args.host)
            mhost, mport = metrics_server.server_address[:2]
            print(f"http://{mhost}:{mport}/metrics", flush=True)
            threading.Thread(target=metrics_server.serve_forever,
                             daemon=True).start()
        print(f"stream ingest serving {host}:{port} "
              f"(horizon {horizon or 'unbounded'}; Ctrl-C / SIGTERM "
              f"stops)", file=sys.stderr)
        await server.serve_forever()

    try:
        with graceful_shutdown():
            asyncio.run(_run())
        return 0
    except (KeyboardInterrupt, ShutdownRequested) as stop:
        # Verdictless streams just end: live state is per-connection
        # and the protocol has no server-side durability to flush.
        print("stream ingest stopped", file=sys.stderr)
        return 128 + stop.signum if isinstance(stop, ShutdownRequested) \
            else 130
    finally:
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
        if events_file is not None:
            events_file.close()


def _cmd_stream_replay(args: argparse.Namespace) -> int:
    import json

    from repro.serve import load_trace_files, replay_traces

    host, _, port = args.address.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: bad address {args.address!r} (want HOST:PORT)",
              file=sys.stderr)
        return 2
    try:
        traces = load_trace_files(args.traces)
    except (OSError, TraceParseError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    results = replay_traces(host, int(port), traces,
                            connections=args.connections)
    payload = {stream_id: {"verdict": result.verdict,
                           "error": result.error}
               for stream_id, result in sorted(results.items())}
    print(json.dumps(payload, indent=2))
    return 0 if all(result.error is None
                    for result in results.values()) else 1


_COMMANDS = {
    "campaign": _cmd_campaign,
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
    "faults": _cmd_faults,
    "profile": _cmd_profile,
    "worker": _cmd_worker,
    "broker": _cmd_broker,
    "status": _cmd_status,
    "stream": _cmd_stream,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # `repro status ... | head` closes stdout early; exit with the
        # conventional SIGPIPE status instead of a traceback.  stdout
        # is re-pointed at devnull so the interpreter's shutdown flush
        # cannot raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
