"""Plain-text report generation.

Renders a campaign's headline results (loop ratios, sub-type breakdown,
cycle statistics, speed impact) or a single run's analysis into a
human-readable report — the console equivalent of the paper's section-4
summary.  Used by the CLI and the examples.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import figures
from repro.analysis.tables import format_table
from repro.campaign.dataset import CampaignResult
from repro.core.cellset import five_g_timeline
from repro.core.pipeline import RunAnalysis


def campaign_report(result: CampaignResult) -> str:
    """A multi-section text report over a campaign's results."""
    lines: list[str] = []
    lines.append(f"campaign: {len(result)} runs, "
                 f"{len(result.locations)} locations, "
                 f"operators: {', '.join(result.operators)}")
    if result.scheduled or result.quarantined:
        lines.append(f"execution: {result.scheduled} scheduled, "
                     f"{result.completed} completed, "
                     f"{len(result.quarantined)} quarantined"
                     + ("" if result.reconciles() else " (DOES NOT RECONCILE)"))
        for entry in result.quarantined[:5]:
            lines.append(f"  quarantined: {entry}")
        if len(result.quarantined) > 5:
            lines.append(f"  ... and {len(result.quarantined) - 5} more")
    lines.append("")

    lines.append("loop ratios (Figure 6):")
    rows = []
    for operator, ratios in figures.fig6_loop_ratio(result).items():
        rows.append([operator, f"{ratios['I']:.1%}", f"{ratios['II-P']:.1%}",
                     f"{ratios['II-SP']:.1%}"])
    lines.append(format_table(["operator", "no-loop", "persistent",
                               "semi-persistent"], rows))
    lines.append("")

    lines.append("loop sub-types per area (Figure 16):")
    for area, breakdown in figures.fig16_breakdown(result).items():
        shares = ", ".join(f"{name} {share:.0%}"
                           for name, share in sorted(breakdown.items()))
        lines.append(f"  {area}: {shares or 'no loops'}")
    lines.append("")

    lines.append("cycle statistics (Figure 10):")
    for operator, summary in figures.fig10_off_time(result).items():
        cycle = summary["cycle_s"]
        off = summary["off_s"]
        if cycle.count == 0:
            lines.append(f"  {operator}: no loop cycles")
            continue
        lines.append(f"  {operator}: {cycle.count} cycles, median cycle "
                     f"{cycle.median:.0f}s, median OFF {off.median:.1f}s "
                     f"({summary['off_ratio'].median:.0%} of the cycle)")
    lines.append("")

    lines.append("speed impact over loop runs (Figure 11):")
    for operator, series in figures.fig11_speed(result).items():
        on = [value for value, _f in series["on"]]
        off = [value for value, _f in series["off"]]
        if not on:
            lines.append(f"  {operator}: no loop runs")
            continue
        off_median = float(np.median(off)) if off else 0.0
        lines.append(f"  {operator}: median ON {float(np.median(on)):.0f} Mbps"
                     f" vs OFF {off_median:.0f} Mbps")
    return "\n".join(lines)


def run_report(analysis: RunAnalysis) -> str:
    """A text report for one analysed run (quickstart-style)."""
    lines: list[str] = []
    metadata = analysis.metadata
    lines.append(f"run: operator={metadata.operator or '?'} "
                 f"area={metadata.area or '?'} "
                 f"location={metadata.location or '?'} "
                 f"device={metadata.device or '?'}")
    lines.append(f"loop: {analysis.detection.kind.value}"
                 + (f", sub-type {analysis.subtype.value}, "
                    f"x{analysis.detection.repetitions} repetitions"
                    if analysis.has_loop else ""))
    if analysis.has_loop:
        lines.append("repeating cell-set block:")
        for cellset in analysis.detection.block:
            state = "5G ON " if cellset.five_g_on else "5G OFF"
            lines.append(f"  [{state}] {cellset}")
        for transition in analysis.transitions[:8]:
            cell = (transition.problem_cell.notation
                    if transition.problem_cell else "?")
            lines.append(f"  OFF at t={transition.time_s:7.1f}s -> "
                         f"{transition.subtype.value} (problem cell {cell})")
    lines.append("5G ON/OFF timeline:")
    for on, start, end in five_g_timeline(analysis.intervals)[:20]:
        state = "ON " if on else "OFF"
        lines.append(f"  {start:7.1f}s - {end:7.1f}s  5G {state}")
    performance = analysis.performance
    if performance.on_speed_samples or performance.off_speed_samples:
        lines.append(f"median speed: {performance.median_on_mbps:.0f} Mbps ON "
                     f"/ {performance.median_off_mbps:.0f} Mbps OFF")
    return "\n".join(lines)
