"""ASCII map rendering (Figures 5, 7 and 20's spatial panels).

The paper's maps show test areas with per-location loop likelihood
(Figure 7/8) and dense grids of loop probability and RSRP around one
site (Figure 20).  These renderers draw the same content as character
grids so the benchmarks can reproduce the figures on a terminal.
"""

from __future__ import annotations

from repro.radio.geometry import Area, Point

#: Likelihood glyph ramp: " " = 0%, then quartiles, "#" = 100%.
_RAMP = " .:-=+*#"


def _glyph(value: float) -> str:
    index = min(int(value * (len(_RAMP) - 1) + 0.5), len(_RAMP) - 1)
    return _RAMP[max(index, 0)]


def likelihood_map(area: Area, points: list[Point], values: list[float],
                   columns: int = 40) -> str:
    """Plot per-location values onto an area-shaped character grid.

    Each location is stamped at its grid cell with a glyph encoding its
    value in [0, 1]; empty cells are dots of the area outline.
    """
    if len(points) != len(values):
        raise ValueError("points and values must align")
    if columns < 4:
        raise ValueError("need at least 4 columns")
    rows = max(2, round(columns * area.height_m / max(area.width_m, 1.0) / 2))
    grid = [[" " for _ in range(columns)] for _ in range(rows)]
    for point, value in zip(points, values):
        col = min(int(point.x_m / area.width_m * columns), columns - 1)
        row = min(int((1.0 - point.y_m / area.height_m) * rows), rows - 1)
        grid[row][col] = _glyph(value)
    border = "+" + "-" * columns + "+"
    lines = [border]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(border)
    lines.append(f"scale: ' '=0% {' '.join(f'{g}={i / (len(_RAMP) - 1):.0%}' for i, g in enumerate(_RAMP) if i)}")
    return "\n".join(lines)


def field_map(points: list[Point], values: list[float],
              low: float | None = None, high: float | None = None) -> str:
    """Plot a dense regular grid of scalar values (e.g. an RSRP field).

    Points must come from :func:`dense_grid_locations` (a regular grid);
    values are normalised between ``low`` and ``high`` (defaults: the
    sample min/max) and rendered with the glyph ramp.
    """
    if len(points) != len(values):
        raise ValueError("points and values must align")
    if not points:
        return "(empty field)"
    xs = sorted({round(point.x_m, 3) for point in points})
    ys = sorted({round(point.y_m, 3) for point in points}, reverse=True)
    low = min(values) if low is None else low
    high = max(values) if high is None else high
    span = max(high - low, 1e-9)
    by_coord = {(round(p.x_m, 3), round(p.y_m, 3)): v
                for p, v in zip(points, values)}
    lines = []
    for y in ys:
        row = []
        for x in xs:
            value = by_coord.get((x, y))
            if value is None:
                row.append(" ")
            else:
                row.append(_glyph((value - low) / span))
        lines.append("".join(row))
    lines.append(f"range: {low:.1f} .. {high:.1f}")
    return "\n".join(lines)


def speed_timeline(series: list[tuple[float, float]], width: int = 70,
                   height: int = 8, off_marker_mbps: float = 1.0) -> str:
    """An ASCII rendering of a download-speed trace (Figure 1b).

    Bins the (time, Mbps) series into ``width`` columns, draws each
    column's mean as a bar, and marks 5G-OFF columns (speed below
    ``off_marker_mbps``) with the paper's ``x``.
    """
    if width < 10 or height < 2:
        raise ValueError("timeline needs width >= 10 and height >= 2")
    if not series:
        return "(no throughput samples)"
    t0 = series[0][0]
    t1 = series[-1][0]
    span = max(t1 - t0, 1e-9)
    columns: list[list[float]] = [[] for _ in range(width)]
    for t, mbps in series:
        index = min(int((t - t0) / span * width), width - 1)
        columns[index].append(mbps)
    means = [sum(values) / len(values) if values else 0.0
             for values in columns]
    peak = max(max(means), 1e-9)
    lines = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        lines.append("".join("#" if mean >= threshold else " "
                             for mean in means))
    lines.append("".join("x" if (values and
                                 sum(values) / len(values) < off_marker_mbps)
                         else "-" for values, mean in zip(columns, means)))
    lines.append(f"0s{' ' * (width - 10)}{span:6.0f}s   peak "
                 f"{peak:.0f} Mbps, x = 5G OFF")
    return "\n".join(lines)
