"""Table renderers (Tables 2, 3, 4, 5).

Each function returns plain-text rows (lists of strings) so that the
benchmarks can print them and tests can assert on their content without
parsing terminal formatting.
"""

from __future__ import annotations

import numpy as np

from repro.campaign.dataset import CampaignResult, DatasetStatistics
from repro.campaign.devices import DEVICES
from repro.cells.cell import CellIdentity
from repro.core.channels import channel_usage_breakdown, scell_mod_failure_ratios
from repro.radio.environment import RadioEnvironment
from repro.radio.geometry import Point


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render rows as an aligned plain-text table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))]
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def table2_cells(environment: RadioEnvironment, point: Point,
                 cells: list[CellIdentity], samples: int = 500,
                 run_seed: int = 0) -> list[list[str]]:
    """Table 2: band / frequency / width / RSRP median±sigma of given cells."""
    rows: list[list[str]] = []
    for identity in cells:
        cell = environment.cell(identity)
        values = [environment.propagation.rsrp_dbm(cell, point, tick, run_seed)
                  for tick in range(samples)]
        median = float(np.median(values))
        sigma = float(np.std(values))
        rows.append([
            identity.notation,
            identity.band.name,
            f"{identity.frequency_mhz:.0f} MHz",
            f"{cell.channel_width_mhz:.0f} MHz",
            f"{median:.0f} ± {sigma:.1f} dBm",
        ])
    return rows


def table3_statistics(result: CampaignResult,
                      area_sizes_km2: dict[str, float] | None = None,
                      modes: dict[str, str] | None = None,
                      ) -> list[DatasetStatistics]:
    """Table 3: one statistics row per operator."""
    modes = modes or {"OP_T": "5G SA", "OP_A": "5G NSA", "OP_V": "5G NSA"}
    return [DatasetStatistics.from_campaign(result, operator,
                                            area_sizes_km2=area_sizes_km2,
                                            mode=modes.get(operator, ""))
            for operator in result.operators]


def table4_devices() -> list[list[str]]:
    """Table 4: the test phone catalogue."""
    rows = []
    for profile in DEVICES.values():
        rows.append([
            profile.name,
            profile.rrc_release or "-",
            f"{profile.mimo_layers}x{profile.mimo_layers} MIMO",
            "CA" if profile.sa_carrier_aggregation else "no SA CA",
            "NSG" if profile.nsg_supported else "no NSG",
        ])
    return rows


def table5_channel_usage(result: CampaignResult,
                         operator: str = "OP_T") -> list[list[str]]:
    """Table 5: per-channel usage breakdown and SCell-mod failure ratio."""
    analyses = result.for_operator(operator).analyses
    usage = channel_usage_breakdown(analyses, use_nr=True)
    failures = scell_mod_failure_ratios(analyses)
    channels = sorted({channel
                       for shares in usage.values() for channel in shares}
                      | set(failures))
    rows: list[list[str]] = []
    for channel in channels:
        stats = failures.get(channel)
        rows.append([
            str(channel),
            f"{usage.get('no-loop', {}).get(channel, 0.0):.1%}",
            f"{usage.get('loop', {}).get(channel, 0.0):.1%}",
            f"{usage.get('S1E1', {}).get(channel, 0.0):.1%}",
            f"{usage.get('S1E2', {}).get(channel, 0.0):.1%}",
            f"{usage.get('S1E3', {}).get(channel, 0.0):.1%}",
            f"{stats.failure_ratio:.1%}" if stats else "-",
        ])
    return rows
