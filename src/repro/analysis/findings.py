"""Table 1: programmatic checks of the paper's eighteen findings.

Each checker evaluates one finding (F1..F18) against campaign results
and returns a :class:`FindingResult` with a verdict and one line of
evidence — turning the paper's qualitative summary table into an
executable artifact.  Findings that need extra inputs (device matrices,
the dense spatial study) accept them as optional arguments and report
``checked=False`` when the input is missing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.campaign.dataset import CampaignResult
from repro.core.channels import channel_usage_breakdown, scell_mod_failure_ratios
from repro.core.classify import LoopSubtype
from repro.core.loops import LoopKind


@dataclass(frozen=True)
class FindingResult:
    """Outcome of checking one paper finding."""

    finding: str
    description: str
    holds: bool
    evidence: str
    checked: bool = True


def _loop_ratio(result: CampaignResult) -> float:
    return result.loop_ratio()


def check_f1(result: CampaignResult) -> FindingResult:
    """F1: loops occur often and are mostly persistent."""
    ratios = [result.for_operator(op).loop_ratio() for op in result.operators]
    loop_runs = [run for run in result.runs if run.has_loop]
    persistent = sum(1 for run in loop_runs
                     if run.analysis.loop_kind is LoopKind.PERSISTENT)
    share = persistent / len(loop_runs) if loop_runs else 0.0
    holds = bool(ratios) and min(ratios) > 0.2 and share > 0.5
    return FindingResult(
        "F1", "5G ON-OFF loops are common and mostly persistent", holds,
        f"loop ratios {[f'{r:.0%}' for r in ratios]}, "
        f"persistent share {share:.0%}")


def check_f2(result: CampaignResult) -> FindingResult:
    """F2: loops observed widely, across all operators and areas."""
    areas_with_loops = sum(
        1 for area in result.areas if result.for_area(area).loop_ratio() > 0)
    holds = areas_with_loops >= max(len(result.areas) - 1, 1)
    return FindingResult(
        "F2", "Loops observed widely across areas and operators", holds,
        f"loops in {areas_with_loops}/{len(result.areas)} areas")


def check_f3(result: CampaignResult) -> FindingResult:
    """F3: loops cycle every tens of seconds with noticeable OFF share."""
    cycles = result.all_cycles()
    if not cycles:
        return FindingResult("F3", "Frequent cycles with noticeable OFF time",
                             False, "no cycles", checked=False)
    median_cycle = float(np.median([c.cycle_s for c in cycles]))
    median_ratio = float(np.median([c.off_ratio for c in cycles]))
    holds = 5.0 < median_cycle < 150.0 and median_ratio > 0.03
    return FindingResult(
        "F3", "Frequent cycles with noticeable OFF time", holds,
        f"median cycle {median_cycle:.0f}s, median OFF share {median_ratio:.0%}")


def check_f4(result: CampaignResult) -> FindingResult:
    """F4: 5G OFF hurts speed; operator-specific severity (OP_T worst)."""
    losses = {}
    for op in result.operators:
        values = [run.analysis.performance.median_speed_loss_mbps
                  for run in result.for_operator(op).runs if run.has_loop]
        if values:
            losses[op] = float(np.median(values))
    holds = bool(losses) and ("OP_T" not in losses
                              or losses["OP_T"] == max(losses.values()))
    evidence = ", ".join(f"{op} {value:.0f} Mbps"
                         for op, value in sorted(losses.items()))
    return FindingResult("F4", "OFF periods cost throughput, worst for OP_T",
                         holds, f"median losses: {evidence}")


def check_f5(device_matrix: dict[str, dict[str, CampaignResult]] | None
             ) -> FindingResult:
    """F5: NSA loops across (almost) all phone models."""
    if not device_matrix:
        return FindingResult("F5", "NSA loops across phone models", False,
                             "device matrix not provided", checked=False)
    ok = True
    for op in ("OP_A", "OP_V"):
        for device_name, result in device_matrix.get(op, {}).items():
            if op == "OP_A" and device_name == "OnePlus 10 Pro":
                ok = ok and result.loop_ratio() == 0.0
            else:
                ok = ok and result.loop_ratio() > 0.0
    return FindingResult("F5", "NSA loops across phone models "
                         "(except 10 Pro on OP_A)", ok,
                         "per-device NSA loop ratios all positive")


def check_f6(device_matrix: dict[str, dict[str, CampaignResult]] | None
             ) -> FindingResult:
    """F6: SA loops only with the OnePlus 12R."""
    if not device_matrix or "OP_T" not in device_matrix:
        return FindingResult("F6", "SA loops only on OnePlus 12R", False,
                             "device matrix not provided", checked=False)
    per_device = device_matrix["OP_T"]
    ok = per_device.get("OnePlus 12R", CampaignResult()).loop_ratio() > 0.0
    for device_name, result in per_device.items():
        if device_name != "OnePlus 12R":
            ok = ok and result.loop_ratio() == 0.0
    return FindingResult("F6", "SA loops only on OnePlus 12R", ok,
                         "12R loops; all other models at 0%")


def check_f7(result: CampaignResult) -> FindingResult:
    """F7: three loop types — S1 over SA, N1/N2 over NSA."""
    sa_types = {run.analysis.subtype.loop_type
                for run in result.for_operator("OP_T").runs if run.has_loop}
    nsa_types = set()
    for op in ("OP_A", "OP_V"):
        nsa_types |= {run.analysis.subtype.loop_type
                      for run in result.for_operator(op).runs if run.has_loop}
    # The split must be clean, and at least one loop must exist to check.
    holds = sa_types <= {"S1"} and nsa_types <= {"N1", "N2"} \
        and bool(sa_types or nsa_types)
    return FindingResult("F7", "S1 over SA; N1/N2 over NSA", holds,
                         f"SA types {sorted(sa_types)}, "
                         f"NSA types {sorted(nsa_types)}")


def check_f9(result: CampaignResult) -> FindingResult:
    """F9: S1 releases pivot on one/few bad-apple SCells."""
    pivots = 0
    s1_transitions = 0
    for run in result.for_operator("OP_T").runs:
        for transition in run.analysis.transitions:
            if transition.subtype.loop_type == "S1":
                s1_transitions += 1
                if transition.problem_cell is not None:
                    pivots += 1
    holds = s1_transitions > 0 and pivots / max(s1_transitions, 1) > 0.8
    return FindingResult("F9", "A few bad-apple SCells ruin the whole MCG",
                         holds,
                         f"{pivots}/{s1_transitions} S1 releases pivot on an "
                         f"identified SCell")


def check_f12(result: CampaignResult) -> FindingResult:
    """F12: the legacy A2-B1 loop of prior work is not observed."""
    legacy = sum(1 for run in result.runs if run.has_loop
                 and run.analysis.subtype is LoopSubtype.N2_A2B1)
    return FindingResult("F12", "Prior-work A2-B1 loops absent",
                         legacy == 0, f"{legacy} A2-B1 loop runs")


def check_f13(result: CampaignResult) -> FindingResult:
    """F13: S1E3 dominant over SA; N2 dominant over NSA."""
    op_t = result.for_operator("OP_T").subtype_breakdown()
    s1e3_max = bool(op_t) and op_t.get(LoopSubtype.S1E3, 0.0) == \
        max(op_t.values())
    n2_ok = True
    for op in ("OP_A", "OP_V"):
        breakdown = result.for_operator(op).subtype_breakdown()
        if breakdown:
            n2 = sum(share for subtype, share in breakdown.items()
                     if subtype.loop_type == "N2")
            n2_ok = n2_ok and n2 > 0.5
    return FindingResult("F13", "S1E3 dominant for SA; N2 for NSA",
                         s1e3_max and n2_ok,
                         f"OP_T S1E3 share "
                         f"{op_t.get(LoopSubtype.S1E3, 0.0):.0%}")


def check_f14(result: CampaignResult) -> FindingResult:
    """F14: one problem channel per operator dominates its loops."""
    usage = channel_usage_breakdown(result.for_operator("OP_T").analyses)
    dominant = usage.get("loop", {}).get(387410, 0.0)
    baseline = usage.get("no-loop", {}).get(387410, 0.0)
    failures = scell_mod_failure_ratios(result.for_operator("OP_T").analyses)
    problem_ratio = failures.get(387410)
    holds = dominant > baseline and problem_ratio is not None \
        and problem_ratio.failure_ratio > 0.05
    return FindingResult(
        "F14", "Problem channel 387410 dominates OP_T loops", holds,
        f"loop usage {dominant:.0%} vs no-loop {baseline:.0%}; "
        f"mod-failure {problem_ratio.failure_ratio:.0%}" if problem_ratio
        else "no modification attempts")


def check_f15(result: CampaignResult) -> FindingResult:
    """F15: OP_V's SCG recovery is far slower than OP_A's."""
    delays = {}
    for op in ("OP_A", "OP_V"):
        values = []
        for run in result.for_operator(op).runs:
            values.extend(run.analysis.scg_meas_delays)
        if values:
            delays[op] = float(np.median(values))
    holds = "OP_A" in delays and "OP_V" in delays \
        and delays["OP_V"] > 3 * delays["OP_A"]
    evidence = ", ".join(f"{op} median {value:.1f}s"
                         for op, value in sorted(delays.items()))
    return FindingResult("F15", "OP_V's 30s-broadcast policy delays 5G "
                         "recovery", holds, evidence or "no SCG failures",
                         checked=bool(delays))


def check_all(result: CampaignResult,
              device_matrix: dict[str, dict[str, CampaignResult]] | None = None,
              ) -> list[FindingResult]:
    """Evaluate every checkable finding; Table 1 as code."""
    return [
        check_f1(result),
        check_f2(result),
        check_f3(result),
        check_f4(result),
        check_f5(device_matrix),
        check_f6(device_matrix),
        check_f7(result),
        check_f9(result),
        check_f12(result),
        check_f13(result),
        check_f14(result),
        check_f15(result),
    ]
