"""Aggregate statistics, table renderers and per-figure series.

``repro.analysis.figures`` exposes one function per paper figure that
turns a :class:`~repro.campaign.dataset.CampaignResult` into the exact
data series the figure plots; ``repro.analysis.tables`` renders the
paper's tables.  The benchmark harness prints these.
"""

from repro.analysis.stats import (
    cdf_points,
    fraction_within,
    quantiles,
    spearman,
    violin_summary,
)
from repro.analysis import figures, tables

__all__ = [
    "cdf_points",
    "figures",
    "fraction_within",
    "quantiles",
    "spearman",
    "tables",
    "violin_summary",
]
