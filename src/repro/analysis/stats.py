"""Small statistics helpers used across figures.

Kept deliberately thin: CDF sampling for the CDF figures (11, 17a),
quantile summaries standing in for the violin plots (10, 19), and the
Spearman rank correlation quoted in section 6 (F16/F17).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats


def cdf_points(values: list[float]) -> list[tuple[float, float]]:
    """(value, cumulative fraction) pairs of an empirical CDF."""
    if not values:
        return []
    ordered = np.sort(np.asarray(values, dtype=float))
    n = len(ordered)
    return [(float(value), (index + 1) / n) for index, value in enumerate(ordered)]


def quantiles(values: list[float],
              probabilities: tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 0.95),
              ) -> dict[float, float]:
    """Selected quantiles of a sample (empty dict for an empty sample)."""
    if not values:
        return {}
    array = np.asarray(values, dtype=float)
    return {p: float(np.quantile(array, p)) for p in probabilities}


@dataclass(frozen=True)
class ViolinSummary:
    """The numbers a violin plot communicates (Figures 10 and 19)."""

    count: int
    p5: float
    p25: float
    median: float
    p75: float
    p95: float

    @staticmethod
    def of(values: list[float]) -> "ViolinSummary":
        if not values:
            return ViolinSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        q = quantiles(values)
        return ViolinSummary(count=len(values), p5=q[0.05], p25=q[0.25],
                             median=q[0.5], p75=q[0.75], p95=q[0.95])


def violin_summary(values: list[float]) -> ViolinSummary:
    """Shorthand for :meth:`ViolinSummary.of`."""
    return ViolinSummary.of(values)


def spearman(x: list[float], y: list[float]) -> float:
    """Spearman rank correlation coefficient (NaN-safe, 0 for tiny samples)."""
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    if len(x) < 3:
        return 0.0
    import warnings

    with warnings.catch_warnings():
        # Constant inputs have no rank correlation; we map that to 0.
        warnings.simplefilter("ignore")
        coefficient, _p = scipy_stats.spearmanr(x, y)
    if np.isnan(coefficient):
        return 0.0
    return float(coefficient)


def fraction_within(errors: list[float], bound: float) -> float:
    """Share of absolute errors within a bound (Figure 22's ±25% check)."""
    if not errors:
        return 0.0
    return sum(1 for error in errors if abs(error) <= bound) / len(errors)
