"""Dataset export — the released-dataset (MI-LAB) emulation.

The paper ships its measurement dataset as per-run / per-instance
tables.  This module exports a :class:`CampaignResult` into three
tables with the same granularity:

* ``runs`` — one row per run: metadata, loop verdict, sub-type,
  cycle counts, speed statistics;
* ``cycles`` — one row per ON-OFF cycle: durations and ratio;
* ``transitions`` — one row per classified 5G-OFF transition:
  time, sub-type, problematic cell.

Each table is built once as a list of native-typed row dicts (``None``
marks a blank — no-loop runs carry no loop verdict fields) and rendered
to CSV; when :mod:`pyarrow` is importable the same rows are also
written as Parquet.  The CSV path never depends on pyarrow.

Loop verdict columns (``loop_kind``, ``loop_period``,
``loop_repetitions``, ``subtype``) are blank for runs without a loop:
a no-loop run has no loop kind, and its detector period/repetitions
are internal detector state, not dataset facts.  All writers pin
``lineterminator="\\n"`` so exports are byte-identical across
platforms.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.campaign.dataset import CampaignResult

RUN_FIELDS = [
    "operator", "area", "location", "device", "run_seed", "mode",
    "duration_s", "loop", "loop_kind", "subtype", "loop_period",
    "loop_repetitions", "n_cycles", "median_on_mbps", "median_off_mbps",
    "n_cellset_changes", "n_unique_cellsets",
]

CYCLE_FIELDS = [
    "operator", "area", "location", "run_seed", "subtype",
    "on_s", "off_s", "cycle_s", "off_ratio",
]

TRANSITION_FIELDS = [
    "operator", "area", "location", "run_seed", "time_s", "subtype",
    "problem_cell", "problem_channel",
]


def run_rows(result: CampaignResult) -> list[dict]:
    """Native-typed per-run rows (``None`` = blank CSV cell)."""
    rows = []
    for run in result.runs:
        analysis = run.analysis
        metadata = run.metadata
        has_loop = analysis.has_loop
        rows.append({
            "operator": metadata.operator,
            "area": metadata.area,
            "location": metadata.location,
            "device": metadata.device,
            "run_seed": metadata.run_seed,
            "mode": metadata.mode,
            "duration_s": round(analysis.duration_s, 1),
            "loop": int(has_loop),
            "loop_kind": analysis.loop_kind.value if has_loop else None,
            "subtype": analysis.subtype.value if has_loop else None,
            "loop_period": analysis.detection.period if has_loop else None,
            "loop_repetitions":
                analysis.detection.repetitions if has_loop else None,
            "n_cycles": len(analysis.cycles),
            "median_on_mbps": round(analysis.performance.median_on_mbps, 2),
            "median_off_mbps": round(analysis.performance.median_off_mbps, 2),
            "n_cellset_changes": analysis.n_cs_samples,
            "n_unique_cellsets": len(analysis.unique_cellsets),
        })
    return rows


def cycle_rows(result: CampaignResult) -> list[dict]:
    """Native-typed per-cycle rows (loop runs only)."""
    rows = []
    for run in result.runs:
        if not run.has_loop:
            continue
        for cycle in run.analysis.cycles:
            rows.append({
                "operator": run.metadata.operator,
                "area": run.metadata.area,
                "location": run.metadata.location,
                "run_seed": run.metadata.run_seed,
                "subtype": run.analysis.subtype.value,
                "on_s": round(cycle.on_s, 2),
                "off_s": round(cycle.off_s, 2),
                "cycle_s": round(cycle.cycle_s, 2),
                "off_ratio": round(cycle.off_ratio, 4),
            })
    return rows


def transition_rows(result: CampaignResult) -> list[dict]:
    """Native-typed per-transition rows."""
    rows = []
    for run in result.runs:
        for transition in run.analysis.transitions:
            cell = transition.problem_cell
            rows.append({
                "operator": run.metadata.operator,
                "area": run.metadata.area,
                "location": run.metadata.location,
                "run_seed": run.metadata.run_seed,
                "time_s": round(transition.time_s, 2),
                "subtype": transition.subtype.value,
                "problem_cell": cell.notation if cell else None,
                "problem_channel": cell.channel if cell else None,
            })
    return rows


def _render_csv(rows: list[dict], fields: list[str]) -> str:
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields, lineterminator="\n")
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def runs_csv(result: CampaignResult) -> str:
    """Render the per-run table as CSV text."""
    return _render_csv(run_rows(result), RUN_FIELDS)


def cycles_csv(result: CampaignResult) -> str:
    """Render the per-cycle table as CSV text."""
    return _render_csv(cycle_rows(result), CYCLE_FIELDS)


def transitions_csv(result: CampaignResult) -> str:
    """Render the per-transition table as CSV text."""
    return _render_csv(transition_rows(result), TRANSITION_FIELDS)


def parquet_available() -> bool:
    """Is :mod:`pyarrow` importable (soft dependency)?"""
    try:
        import pyarrow  # noqa: F401
    except ImportError:
        return False
    return True


def _write_parquet(rows: list[dict], fields: list[str], path: Path) -> None:
    import pyarrow as pa
    import pyarrow.parquet as pq

    table = pa.table({field: [row.get(field) for row in rows]
                      for field in fields})
    pq.write_table(table, path)


def export_dataset(result: CampaignResult,
                   directory: str | Path) -> dict[str, Path]:
    """Write the three tables into a directory; returns the written paths.

    Always writes ``runs.csv`` / ``cycles.csv`` / ``transitions.csv``.
    When pyarrow is importable the same rows are also written as
    ``runs.parquet`` / ``cycles.parquet`` / ``transitions.parquet``,
    returned under ``runs_parquet`` / ``cycles_parquet`` /
    ``transitions_parquet`` keys.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    tables = {
        "runs": (run_rows(result), RUN_FIELDS),
        "cycles": (cycle_rows(result), CYCLE_FIELDS),
        "transitions": (transition_rows(result), TRANSITION_FIELDS),
    }
    paths: dict[str, Path] = {}
    with_parquet = parquet_available()
    for name, (rows, fields) in tables.items():
        paths[name] = target / f"{name}.csv"
        paths[name].write_text(_render_csv(rows, fields), encoding="utf-8")
        if with_parquet:
            paths[f"{name}_parquet"] = target / f"{name}.parquet"
            _write_parquet(rows, fields, paths[f"{name}_parquet"])
    return paths
