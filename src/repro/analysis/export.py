"""CSV dataset export — the released-dataset (MI-LAB) emulation.

The paper ships its measurement dataset as per-run / per-instance
tables.  This module exports a :class:`CampaignResult` into three CSVs
with the same granularity:

* ``runs.csv`` — one row per run: metadata, loop verdict, sub-type,
  cycle counts, speed statistics;
* ``cycles.csv`` — one row per ON-OFF cycle: durations and ratio;
* ``transitions.csv`` — one row per classified 5G-OFF transition:
  time, sub-type, problematic cell.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.campaign.dataset import CampaignResult

RUN_FIELDS = [
    "operator", "area", "location", "device", "run_seed", "mode",
    "duration_s", "loop", "loop_kind", "subtype", "loop_period",
    "loop_repetitions", "n_cycles", "median_on_mbps", "median_off_mbps",
    "n_cellset_changes", "n_unique_cellsets",
]

CYCLE_FIELDS = [
    "operator", "area", "location", "run_seed", "subtype",
    "on_s", "off_s", "cycle_s", "off_ratio",
]

TRANSITION_FIELDS = [
    "operator", "area", "location", "run_seed", "time_s", "subtype",
    "problem_cell", "problem_channel",
]


def runs_csv(result: CampaignResult) -> str:
    """Render the per-run table as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=RUN_FIELDS)
    writer.writeheader()
    for run in result.runs:
        analysis = run.analysis
        metadata = run.metadata
        writer.writerow({
            "operator": metadata.operator,
            "area": metadata.area,
            "location": metadata.location,
            "device": metadata.device,
            "run_seed": metadata.run_seed,
            "mode": metadata.mode,
            "duration_s": round(analysis.duration_s, 1),
            "loop": int(analysis.has_loop),
            "loop_kind": analysis.loop_kind.value,
            "subtype": analysis.subtype.value if analysis.has_loop else "",
            "loop_period": analysis.detection.period,
            "loop_repetitions": analysis.detection.repetitions,
            "n_cycles": len(analysis.cycles),
            "median_on_mbps": round(analysis.performance.median_on_mbps, 2),
            "median_off_mbps": round(analysis.performance.median_off_mbps, 2),
            "n_cellset_changes": analysis.n_cs_samples,
            "n_unique_cellsets": len(analysis.unique_cellsets),
        })
    return buffer.getvalue()


def cycles_csv(result: CampaignResult) -> str:
    """Render the per-cycle table as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CYCLE_FIELDS)
    writer.writeheader()
    for run in result.runs:
        if not run.has_loop:
            continue
        for cycle in run.analysis.cycles:
            writer.writerow({
                "operator": run.metadata.operator,
                "area": run.metadata.area,
                "location": run.metadata.location,
                "run_seed": run.metadata.run_seed,
                "subtype": run.analysis.subtype.value,
                "on_s": round(cycle.on_s, 2),
                "off_s": round(cycle.off_s, 2),
                "cycle_s": round(cycle.cycle_s, 2),
                "off_ratio": round(cycle.off_ratio, 4),
            })
    return buffer.getvalue()


def transitions_csv(result: CampaignResult) -> str:
    """Render the per-transition table as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=TRANSITION_FIELDS)
    writer.writeheader()
    for run in result.runs:
        for transition in run.analysis.transitions:
            cell = transition.problem_cell
            writer.writerow({
                "operator": run.metadata.operator,
                "area": run.metadata.area,
                "location": run.metadata.location,
                "run_seed": run.metadata.run_seed,
                "time_s": round(transition.time_s, 2),
                "subtype": transition.subtype.value,
                "problem_cell": cell.notation if cell else "",
                "problem_channel": cell.channel if cell else "",
            })
    return buffer.getvalue()


def export_dataset(result: CampaignResult, directory: str | Path) -> dict[str, Path]:
    """Write all three CSVs into a directory; returns the written paths."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    paths = {
        "runs": target / "runs.csv",
        "cycles": target / "cycles.csv",
        "transitions": target / "transitions.csv",
    }
    paths["runs"].write_text(runs_csv(result), encoding="utf-8")
    paths["cycles"].write_text(cycles_csv(result), encoding="utf-8")
    paths["transitions"].write_text(transitions_csv(result), encoding="utf-8")
    return paths
