"""Per-figure data series (Figures 6-19).

Every function maps a :class:`~repro.campaign.dataset.CampaignResult`
(or a per-operator slice of one) to exactly the series the corresponding
paper figure plots.  The benchmark files print these; tests assert their
shapes and invariants.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.stats import ViolinSummary, cdf_points
from repro.campaign.dataset import CampaignResult
from repro.core.channels import (
    median_rsrp_per_area,
    median_rsrp_per_subtype,
    nsa_channel_usage,
    tenth_percentile_rsrp_per_location,
)
from repro.core.classify import LoopSubtype
from repro.core.loops import LoopKind
from repro.core.metrics import CycleMetrics


def fig6_loop_ratio(result: CampaignResult) -> dict[str, dict[str, float]]:
    """Figure 6: per-operator share of no-loop / persistent / semi-persistent."""
    series: dict[str, dict[str, float]] = {}
    for operator in result.operators:
        ratios = result.for_operator(operator).loop_kind_ratios()
        series[operator] = {kind.value: ratio for kind, ratio in ratios.items()}
    return series


def fig8_location_likelihood(result: CampaignResult,
                             area: str = "A1") -> dict[str, float]:
    """Figure 8: loop likelihood per test location in one area."""
    return result.for_area(area).loop_likelihood_per_location()


def fig9a_area_ratios(result: CampaignResult) -> dict[str, dict[str, float]]:
    """Figure 9a: loop ratio (P / SP split) per area."""
    series: dict[str, dict[str, float]] = {}
    for area in result.areas:
        ratios = result.for_area(area).loop_kind_ratios()
        series[area] = {kind.value: ratio for kind, ratio in ratios.items()}
    return series


_LIKELIHOOD_BANDS = (">75%", "50-75%", "25-50%", ">0-25%", "=0%")


def _likelihood_band(value: float) -> str:
    if value == 0.0:
        return "=0%"
    if value > 0.75:
        return ">75%"
    if value > 0.50:
        return "50-75%"
    if value > 0.25:
        return "25-50%"
    return ">0-25%"


def fig9b_likelihood_quartiles(result: CampaignResult) -> dict[str, dict[str, float]]:
    """Figure 9b: per area, the share of locations in each likelihood band."""
    series: dict[str, dict[str, float]] = {}
    for area in result.areas:
        likelihoods = result.for_area(area).loop_likelihood_per_location()
        if not likelihoods:
            continue
        counts = {band: 0 for band in _LIKELIHOOD_BANDS}
        for value in likelihoods.values():
            counts[_likelihood_band(value)] += 1
        total = len(likelihoods)
        series[area] = {band: counts[band] / total for band in _LIKELIHOOD_BANDS}
    return series


def fig10_off_time(result: CampaignResult) -> dict[str, dict[str, ViolinSummary]]:
    """Figure 10: cycle / OFF / OFF-ratio distributions per operator."""
    series: dict[str, dict[str, ViolinSummary]] = {}
    for operator in result.operators:
        cycles: list[CycleMetrics] = result.for_operator(operator).all_cycles()
        series[operator] = {
            "cycle_s": ViolinSummary.of([c.cycle_s for c in cycles]),
            "off_s": ViolinSummary.of([c.off_s for c in cycles]),
            "off_ratio": ViolinSummary.of([c.off_ratio for c in cycles]),
        }
    return series


def fig11_speed(result: CampaignResult) -> dict[str, dict[str, list[tuple[float, float]]]]:
    """Figure 11: CDFs of per-run median ON speed, OFF speed, and loss."""
    series: dict[str, dict[str, list[tuple[float, float]]]] = {}
    for operator in result.operators:
        on, off, loss = [], [], []
        for run in result.for_operator(operator).runs:
            if not run.has_loop:
                continue
            performance = run.analysis.performance
            if performance.on_speed_samples:
                on.append(performance.median_on_mbps)
            if performance.off_speed_samples:
                off.append(performance.median_off_mbps)
            if performance.cycle_speed_losses:
                loss.append(performance.median_speed_loss_mbps)
        series[operator] = {"on": cdf_points(on), "off": cdf_points(off),
                            "loss": cdf_points(loss)}
    return series


def fig13_transition_counts(result: CampaignResult) -> dict[str, dict[str, int]]:
    """Figure 13: loop types observed per operator (count of loop runs)."""
    series: dict[str, dict[str, int]] = {}
    for operator in result.operators:
        counts: dict[str, int] = defaultdict(int)
        for run in result.for_operator(operator).runs:
            if run.has_loop:
                counts[run.analysis.subtype.loop_type] += 1
        series[operator] = dict(counts)
    return series


def fig16_breakdown(result: CampaignResult) -> dict[str, dict[str, float]]:
    """Figure 16: loop sub-type shares per area."""
    series: dict[str, dict[str, float]] = {}
    for area in result.areas:
        breakdown = result.for_area(area).subtype_breakdown()
        series[area] = {subtype.value: share for subtype, share in breakdown.items()}
    return series


def fig17a_tenth_percentile_cdf(result: CampaignResult,
                                channel: int) -> list[tuple[float, float]]:
    """Figure 17a: CDF over locations of the 10th-percentile serving RSRP."""
    per_location = tenth_percentile_rsrp_per_location(result.analyses, channel)
    return cdf_points(list(per_location.values()))


def fig17b_rsrp_per_area(result: CampaignResult, channel: int) -> dict[str, float]:
    """Figure 17b: median serving RSRP on the problem channel per area."""
    return median_rsrp_per_area(result.analyses, channel)


def fig17c_rsrp_per_subtype(result: CampaignResult, channel: int) -> dict[str, float]:
    """Figure 17c: median serving RSRP on the problem channel per sub-type."""
    return median_rsrp_per_subtype(result.analyses, channel)


def fig18_channel_usage(result: CampaignResult, operator: str,
                        subtype: LoopSubtype, use_nr: bool,
                        ) -> dict[str, dict[int, float]]:
    """Figure 18: channel usage of one loop sub-type vs no-loop runs."""
    return nsa_channel_usage(result.for_operator(operator).analyses,
                             subtype, use_nr)


def fig19_off_by_subtype(result: CampaignResult,
                         operator: str) -> dict[str, ViolinSummary]:
    """Figure 19a/b: 5G OFF time per loop sub-type for one operator."""
    grouped = result.for_operator(operator).cycles_by_subtype()
    return {subtype.value: ViolinSummary.of([c.off_s for c in cycles])
            for subtype, cycles in grouped.items()}


def fig19c_measurement_delays(result: CampaignResult) -> dict[str, ViolinSummary]:
    """Figure 19c: post-SCG-failure 5G measurement delays per operator."""
    series: dict[str, ViolinSummary] = {}
    for operator in result.operators:
        delays: list[float] = []
        for run in result.for_operator(operator).runs:
            delays.extend(run.analysis.scg_meas_delays)
        series[operator] = ViolinSummary.of(delays)
    return series


def persistent_share_of_loops(result: CampaignResult) -> float:
    """Share of loop runs that are persistent (F1)."""
    loop_runs = [run for run in result.runs if run.has_loop]
    if not loop_runs:
        return 0.0
    persistent = sum(1 for run in loop_runs
                     if run.analysis.loop_kind is LoopKind.PERSISTENT)
    return persistent / len(loop_runs)
