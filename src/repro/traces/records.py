"""Typed signaling-log records.

Each record mirrors one kind of line in a Network-Signal-Guru-style RRC
capture (see the paper's Appendix B, Figures 24-26 for raw examples):
RRC setup / reconfiguration / reestablishment messages, measurement
reports, SCG failure information, mobility-management state changes and
1 Hz throughput samples.

Every record is a frozen dataclass with a ``time_s`` timestamp and a
``kind`` tag used for JSONL round-tripping.  SCell bookkeeping follows
3GPP faithfully: ``sCellToAddModList`` entries carry an ``sCellIndex``
and ``sCellToReleaseList`` carries *indices only*, so the analysis side
must track the index->cell mapping exactly as the authors' scripts do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cells.cell import CellIdentity, Rat


@dataclass(frozen=True)
class CellMeasurement:
    """One cell's RSRP/RSRQ inside a measurement report."""

    identity: CellIdentity
    rsrp_dbm: float
    rsrq_db: float
    is_serving: bool = False

    def to_dict(self) -> dict:
        return {
            "cell": _encode_identity(self.identity),
            "rsrp": round(self.rsrp_dbm, 2),
            "rsrq": round(self.rsrq_db, 2),
            "serving": self.is_serving,
        }

    @staticmethod
    def from_dict(data: dict) -> "CellMeasurement":
        return CellMeasurement(
            identity=_decode_identity(data["cell"]),
            rsrp_dbm=float(data["rsrp"]),
            rsrq_db=float(data["rsrq"]),
            is_serving=bool(data.get("serving", False)),
        )


def _encode_identity(identity: CellIdentity) -> dict:
    return {"pci": identity.pci, "ch": identity.channel, "rat": identity.rat.value}


def _decode_identity(data: dict) -> CellIdentity:
    rat = Rat.NR if data["rat"] == Rat.NR.value else Rat.LTE
    return CellIdentity(pci=int(data["pci"]), channel=int(data["ch"]), rat=rat)


def _encode_optional_identity(identity: CellIdentity | None) -> dict | None:
    return None if identity is None else _encode_identity(identity)


def _decode_optional_identity(data: dict | None) -> CellIdentity | None:
    return None if data is None else _decode_identity(data)


@dataclass(frozen=True)
class Record:
    """Base class: a timestamped signaling-log line."""

    time_s: float

    kind: str = field(default="record", init=False, repr=False)

    def payload(self) -> dict:
        """Subclass-specific fields (everything except time and kind)."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        data = {"t": round(self.time_s, 4), "kind": self.kind}
        data.update(self.payload())
        return data


@dataclass(frozen=True)
class SystemInfoRecord(Record):
    """MIB/SIB broadcast: cell-selection parameters from one cell."""

    cell: CellIdentity = None  # type: ignore[assignment]
    selection_threshold_dbm: float = -108.0

    kind: str = field(default="sys_info", init=False, repr=False)

    def payload(self) -> dict:
        return {
            "cell": _encode_identity(self.cell),
            "threshold": self.selection_threshold_dbm,
        }


@dataclass(frozen=True)
class RrcSetupRequestRecord(Record):
    """RRC Setup Request (5G) / RRC Connection Setup Request (4G)."""

    cell: CellIdentity = None  # type: ignore[assignment]

    kind: str = field(default="rrc_setup_request", init=False, repr=False)

    def payload(self) -> dict:
        return {"cell": _encode_identity(self.cell)}


@dataclass(frozen=True)
class RrcSetupRecord(Record):
    """RRC Setup / RRC Connection Setup (network -> UE)."""

    cell: CellIdentity = None  # type: ignore[assignment]

    kind: str = field(default="rrc_setup", init=False, repr=False)

    def payload(self) -> dict:
        return {"cell": _encode_identity(self.cell)}


@dataclass(frozen=True)
class RrcSetupCompleteRecord(Record):
    """RRC Setup Complete: the connection is established on ``cell``."""

    cell: CellIdentity = None  # type: ignore[assignment]

    kind: str = field(default="rrc_setup_complete", init=False, repr=False)

    def payload(self) -> dict:
        return {"cell": _encode_identity(self.cell)}


@dataclass(frozen=True)
class MeasurementReportRecord(Record):
    """UE -> network measurement report.

    ``event`` names the 3GPP trigger that produced the report ("A2",
    "A3", "A5", "B1") or "periodic" for the 1 Hz background samples the
    campaign collects (Table 3's tens of millions of RSRP/RSRQ points).
    """

    event: str = "periodic"
    measurements: tuple[CellMeasurement, ...] = ()

    kind: str = field(default="meas_report", init=False, repr=False)

    def payload(self) -> dict:
        return {
            "event": self.event,
            "meas": [m.to_dict() for m in self.measurements],
        }

    def measurement_of(self, identity: CellIdentity) -> CellMeasurement | None:
        for measurement in self.measurements:
            if measurement.identity == identity:
                return measurement
        return None


@dataclass(frozen=True)
class ScellAddMod:
    """One entry of sCellToAddModList: index + the cell it now maps to."""

    scell_index: int
    identity: CellIdentity

    def to_dict(self) -> dict:
        return {"idx": self.scell_index, "cell": _encode_identity(self.identity)}

    @staticmethod
    def from_dict(data: dict) -> "ScellAddMod":
        return ScellAddMod(scell_index=int(data["idx"]),
                           identity=_decode_identity(data["cell"]))


@dataclass(frozen=True)
class RrcReconfigurationRecord(Record):
    """RRC Reconfiguration (the workhorse message, TS 38.331 / 36.331).

    Field presence encodes the procedure, exactly as in Appendix B:

    * ``scell_add_mod`` / ``scell_release_indices`` — SCell add/mod/release.
    * ``handover_target`` — mobilityControlInfo: a PCell handover.
    * ``scg_pscell`` (+ ``scg_scells``) — spCellConfig: NSA SCG setup.
    * ``release_scg`` — SCG release after an SCG failure.
    * ``meas_events`` — measConfig: configured report triggers, as
      ``(event, channel, threshold_or_offset)`` triples.
    """

    pcell: CellIdentity = None  # type: ignore[assignment]
    scell_add_mod: tuple[ScellAddMod, ...] = ()
    scell_release_indices: tuple[int, ...] = ()
    handover_target: CellIdentity | None = None
    scg_pscell: CellIdentity | None = None
    scg_scells: tuple[CellIdentity, ...] = ()
    release_scg: bool = False
    meas_events: tuple[tuple[str, int, float], ...] = ()

    kind: str = field(default="rrc_reconfiguration", init=False, repr=False)

    def payload(self) -> dict:
        return {
            "pcell": _encode_identity(self.pcell),
            "scell_add_mod": [entry.to_dict() for entry in self.scell_add_mod],
            "scell_release": list(self.scell_release_indices),
            "handover": _encode_optional_identity(self.handover_target),
            "scg_pscell": _encode_optional_identity(self.scg_pscell),
            "scg_scells": [_encode_identity(c) for c in self.scg_scells],
            "release_scg": self.release_scg,
            "meas_events": [list(event) for event in self.meas_events],
        }

    @property
    def is_handover(self) -> bool:
        return self.handover_target is not None

    @property
    def adds_scg(self) -> bool:
        return self.scg_pscell is not None


@dataclass(frozen=True)
class RrcReconfigurationCompleteRecord(Record):
    """UE acknowledgement of a reconfiguration."""

    pcell: CellIdentity = None  # type: ignore[assignment]

    kind: str = field(default="rrc_reconfiguration_complete", init=False, repr=False)

    def payload(self) -> dict:
        return {"pcell": _encode_identity(self.pcell)}


@dataclass(frozen=True)
class ScgFailureRecord(Record):
    """SCGFailureInformation (UE -> network), e.g. randomAccessProblem."""

    failure_type: str = "randomAccessProblem"

    kind: str = field(default="scg_failure", init=False, repr=False)

    def payload(self) -> dict:
        return {"failure_type": self.failure_type}


@dataclass(frozen=True)
class RrcReestablishmentRequestRecord(Record):
    """RRC (Connection) Reestablishment Request with its cause.

    ``cause`` is ``"otherFailure"`` for a radio-link failure (N1E1) or
    ``"handoverFailure"`` for a failed handover (N1E2).
    """

    cause: str = "otherFailure"
    cell: CellIdentity | None = None

    kind: str = field(default="rrc_reestablishment_request", init=False, repr=False)

    def payload(self) -> dict:
        return {"cause": self.cause, "cell": _encode_optional_identity(self.cell)}


@dataclass(frozen=True)
class RrcReestablishmentCompleteRecord(Record):
    """Reestablishment complete on ``cell`` (the new PCell)."""

    cell: CellIdentity = None  # type: ignore[assignment]

    kind: str = field(default="rrc_reestablishment_complete", init=False, repr=False)

    def payload(self) -> dict:
        return {"cell": _encode_identity(self.cell)}


@dataclass(frozen=True)
class RrcReleaseRecord(Record):
    """RRC (Connection) Release: the connection is torn down to IDLE."""

    kind: str = field(default="rrc_release", init=False, repr=False)

    def payload(self) -> dict:
        return {}


@dataclass(frozen=True)
class MmStateRecord(Record):
    """Mobility-management state line (the only visible sign of the
    S1E3 exception: ``MM5G State = DEREGISTERED`` with substate
    ``NO_CELL_AVAILABLE``, Figure 26)."""

    state: str = "REGISTERED"
    substate: str = ""

    kind: str = field(default="mm_state", init=False, repr=False)

    def payload(self) -> dict:
        return {"state": self.state, "substate": self.substate}


@dataclass(frozen=True)
class ThroughputSampleRecord(Record):
    """One second of measured downlink throughput (tcpdump substitute)."""

    mbps: float = 0.0

    kind: str = field(default="throughput", init=False, repr=False)

    def payload(self) -> dict:
        return {"mbps": round(self.mbps, 3)}
