"""The SignalingTrace container: an ordered run capture.

One :class:`SignalingTrace` corresponds to one experiment run (one
5-minute stationary speed test, or one walking/driving collection): a
time-ordered list of records plus run metadata (operator, area,
location, device, run seed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Type, TypeVar

from repro.traces.records import Record, ThroughputSampleRecord

RecordT = TypeVar("RecordT", bound=Record)


@dataclass
class TraceMetadata:
    """Metadata identifying the run a trace came from."""

    operator: str = ""
    area: str = ""
    location: str = ""
    device: str = ""
    run_seed: int = 0
    mode: str = "stationary"

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "area": self.area,
            "location": self.location,
            "device": self.device,
            "run_seed": self.run_seed,
            "mode": self.mode,
        }

    @staticmethod
    def from_dict(data: dict) -> "TraceMetadata":
        return TraceMetadata(
            operator=str(data.get("operator", "")),
            area=str(data.get("area", "")),
            location=str(data.get("location", "")),
            device=str(data.get("device", "")),
            run_seed=int(data.get("run_seed", 0)),
            mode=str(data.get("mode", "stationary")),
        )


@dataclass
class SignalingTrace:
    """A time-ordered capture of one run."""

    metadata: TraceMetadata = field(default_factory=TraceMetadata)
    records: list[Record] = field(default_factory=list)

    def append(self, record: Record) -> None:
        """Append a record; timestamps must be non-decreasing."""
        if self.records and record.time_s < self.records[-1].time_s - 1e-9:
            raise ValueError(
                f"record at t={record.time_s} arrives before trace tail "
                f"t={self.records[-1].time_s}")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    @property
    def duration_s(self) -> float:
        if not self.records:
            return 0.0
        return self.records[-1].time_s - self.records[0].time_s

    def of_kind(self, record_type: Type[RecordT]) -> list[RecordT]:
        """All records of one type, in order."""
        return [record for record in self.records if isinstance(record, record_type)]

    def signaling_records(self) -> list[Record]:
        """All records except throughput samples (the RRC capture proper)."""
        return [record for record in self.records
                if not isinstance(record, ThroughputSampleRecord)]

    def throughput_series(self) -> list[tuple[float, float]]:
        """(time, Mbps) pairs of the throughput capture."""
        return [(record.time_s, record.mbps)
                for record in self.of_kind(ThroughputSampleRecord)]

    def to_jsonl(self) -> str:
        """Serialise to JSONL: one metadata header line, then one line per record."""
        lines = [json.dumps({"meta": self.metadata.to_dict()})]
        lines.extend(json.dumps(record.to_dict()) for record in self.records)
        return "\n".join(lines) + "\n"

    def save(self, path: str | Path) -> None:
        """Write the trace to a JSONL file."""
        Path(path).write_text(self.to_jsonl(), encoding="utf-8")

    @staticmethod
    def load(path: str | Path, errors: str = "strict") -> "SignalingTrace":
        """Read a trace back from a JSONL file (see :mod:`repro.traces.parser`).

        ``errors="recover"`` skips malformed lines instead of raising;
        use :meth:`load_with_report` when the skip accounting matters.
        """
        return SignalingTrace.load_with_report(path, errors=errors).trace

    @staticmethod
    def load_with_report(path: str | Path, errors: str = "strict"):
        """Read a trace plus its :class:`~repro.resilience.ingest.ParseReport`."""
        from repro.traces.parser import parse_trace

        return parse_trace(Path(path).read_text(encoding="utf-8"),
                           errors=errors)
