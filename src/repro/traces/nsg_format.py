"""Network-Signal-Guru-style textual log rendering and parsing.

The paper's raw captures (Appendix B, Figures 24-26) look like::

    19:43:31.635 NR5G RRC OTA Packet -- BCCH_BCH / MIB
      Physical Cell ID = 393, Freq = 521310, ...
    19:43:34.361 NR5G RRC OTA Packet -- DL_DCCH / RRCReconfiguration
      sCellToAddModList {sCellIndex 1, physCellId 273, absoluteFrequencySSB 387410}
      sCellToReleaseList {3}

This module renders a :class:`~repro.traces.log.SignalingTrace` into
that textual form and parses it back into typed records, so the
analysis pipeline can be pointed at NSG-like text exactly the way the
paper's released scripts are.  The JSONL format remains the canonical
round-trip format; the NSG text covers the RRC-visible subset (it does
not carry throughput samples, which NSG never logged either).
"""

from __future__ import annotations

import re

from repro.cells.cell import CellIdentity, Rat
from repro.traces.log import SignalingTrace, TraceMetadata
from repro.traces.records import (
    CellMeasurement,
    MeasurementReportRecord,
    MmStateRecord,
    Record,
    RrcReconfigurationCompleteRecord,
    RrcReconfigurationRecord,
    RrcReestablishmentCompleteRecord,
    RrcReestablishmentRequestRecord,
    RrcReleaseRecord,
    RrcSetupCompleteRecord,
    RrcSetupRecord,
    RrcSetupRequestRecord,
    ScellAddMod,
    ScgFailureRecord,
    SystemInfoRecord,
    ThroughputSampleRecord,
)


class NsgFormatError(ValueError):
    """Raised on malformed NSG-style text."""


def _timestamp(time_s: float) -> str:
    hours = int(time_s // 3600) % 24
    minutes = int(time_s // 60) % 60
    seconds = time_s % 60.0
    return f"{hours:02d}:{minutes:02d}:{seconds:06.3f}"


def _parse_timestamp(text: str) -> float:
    match = re.match(r"^(\d{2}):(\d{2}):(\d{2}\.\d{3})$", text)
    if match is None:
        raise NsgFormatError(f"bad timestamp {text!r}")
    return int(match.group(1)) * 3600 + int(match.group(2)) * 60 \
        + float(match.group(3))


def _rat_prefix(rat: Rat) -> str:
    return "NR5G" if rat is Rat.NR else "LTE"


def _cell_ref(identity: CellIdentity) -> str:
    return (f"Physical Cell ID = {identity.pci}, Freq = {identity.channel}, "
            f"RAT = {identity.rat.value}")


_CELL_REF_RE = re.compile(
    r"Physical Cell ID = (?P<pci>\d+), Freq = (?P<channel>\d+), "
    r"RAT = (?P<rat>\dG)")


def _parse_cell_ref(text: str) -> CellIdentity:
    match = _CELL_REF_RE.search(text)
    if match is None:
        raise NsgFormatError(f"no cell reference in {text!r}")
    rat = Rat.NR if match.group("rat") == "5G" else Rat.LTE
    return CellIdentity(int(match.group("pci")), int(match.group("channel")),
                        rat)


def render_record(record: Record) -> list[str]:
    """Render one record as NSG-style lines (empty for throughput)."""
    stamp = _timestamp(record.time_s)
    if isinstance(record, SystemInfoRecord):
        prefix = _rat_prefix(record.cell.rat)
        return [f"{stamp} {prefix} RRC OTA Packet -- BCCH_DL_SCH / "
                f"SystemInformationBlockType1",
                f"  {_cell_ref(record.cell)}, "
                f"q-RxLevMin = {record.selection_threshold_dbm:.0f}"]
    if isinstance(record, RrcSetupRequestRecord):
        return [f"{stamp} {_rat_prefix(record.cell.rat)} RRC OTA Packet -- "
                f"UL_CCCH / RRC Setup Req",
                f"  {_cell_ref(record.cell)}"]
    if isinstance(record, RrcSetupRecord):
        return [f"{stamp} {_rat_prefix(record.cell.rat)} RRC OTA Packet -- "
                f"DL_CCCH / RRC Setup",
                f"  {_cell_ref(record.cell)}"]
    if isinstance(record, RrcSetupCompleteRecord):
        return [f"{stamp} {_rat_prefix(record.cell.rat)} RRC OTA Packet -- "
                f"UL_DCCH / RRCSetup Complete",
                f"  {_cell_ref(record.cell)}"]
    if isinstance(record, MeasurementReportRecord):
        lines = [f"{stamp} RRC OTA Packet -- UL_DCCH / MeasurementReport "
                 f"(event {record.event})"]
        for measurement in record.measurements:
            role = "serving" if measurement.is_serving else "candidate"
            lines.append(f"  {measurement.identity.pci}@"
                         f"{measurement.identity.channel}"
                         f"/{measurement.identity.rat.value} ({role}): "
                         f"{measurement.rsrp_dbm:.1f}dBm "
                         f"{measurement.rsrq_db:.1f}dB")
        return lines
    if isinstance(record, RrcReconfigurationRecord):
        lines = [f"{stamp} {_rat_prefix(record.pcell.rat)} RRC OTA Packet -- "
                 f"DL_DCCH / RRCReconfiguration",
                 f"  {_cell_ref(record.pcell)}"]
        if record.scell_add_mod:
            entries = ", ".join(
                f"{{sCellIndex {entry.scell_index}, physCellId "
                f"{entry.identity.pci}, absoluteFrequencySSB "
                f"{entry.identity.channel}}}"
                for entry in record.scell_add_mod)
            lines.append(f"  sCellToAddModList {entries}")
        if record.scell_release_indices:
            indices = ", ".join(str(i) for i in record.scell_release_indices)
            lines.append(f"  sCellToReleaseList {{{indices}}}")
        if record.handover_target is not None:
            lines.append(f"  mobilityControlInfo targetPhysCellId "
                         f"{record.handover_target.pci} targetFreq "
                         f"{record.handover_target.channel}")
        if record.scg_pscell is not None:
            partners = " ".join(f"{c.pci}@{c.channel}"
                                for c in record.scg_scells)
            lines.append(f"  spCellConfig physCellId {record.scg_pscell.pci} "
                         f"freq {record.scg_pscell.channel}"
                         + (f" scells {partners}" if partners else ""))
        if record.release_scg:
            lines.append("  scg-ToReleaseList present")
        for event, channel, value in record.meas_events:
            lines.append(f"  measConfig event {event} on {channel} "
                         f"threshold {value:.1f}")
        return lines
    if isinstance(record, RrcReconfigurationCompleteRecord):
        return [f"{stamp} {_rat_prefix(record.pcell.rat)} RRC OTA Packet -- "
                f"UL_DCCH / RRCReconfiguration Complete",
                f"  {_cell_ref(record.pcell)}"]
    if isinstance(record, ScgFailureRecord):
        return [f"{stamp} RRC OTA Packet -- UL_DCCH / SCGFailureInformation",
                f"  failureType = {record.failure_type}"]
    if isinstance(record, RrcReestablishmentRequestRecord):
        lines = [f"{stamp} RRC OTA Packet -- UL_CCCH / "
                 f"RRCReestablishmentRequest",
                 f"  reestablishmentCause = {record.cause}"]
        if record.cell is not None:
            lines.append(f"  {_cell_ref(record.cell)}")
        return lines
    if isinstance(record, RrcReestablishmentCompleteRecord):
        return [f"{stamp} RRC OTA Packet -- UL_DCCH / "
                f"RRCReestablishmentComplete",
                f"  {_cell_ref(record.cell)}"]
    if isinstance(record, RrcReleaseRecord):
        return [f"{stamp} RRC OTA Packet -- DL_DCCH / RRCRelease"]
    if isinstance(record, MmStateRecord):
        lines = [f"{stamp} MM5G State = {record.state}"]
        if record.substate:
            lines.append(f"  Mm5g Deregistered Substate = {record.substate}")
        return lines
    if isinstance(record, ThroughputSampleRecord):
        return []  # NSG never logged throughput
    raise NsgFormatError(f"unknown record type {type(record).__name__}")


def render_trace(trace: SignalingTrace) -> str:
    """Render a whole trace as NSG-style text (with a metadata header)."""
    lines = [f"# operator={trace.metadata.operator} "
             f"area={trace.metadata.area} location={trace.metadata.location} "
             f"device={trace.metadata.device} run_seed={trace.metadata.run_seed}"]
    for record in trace.records:
        lines.extend(render_record(record))
    return "\n".join(lines) + "\n"


_HEADER_RE = re.compile(
    r"^# operator=(?P<operator>\S*) area=(?P<area>\S*) "
    r"location=(?P<location>\S*) device=(?P<device>.*?) "
    r"run_seed=(?P<seed>\d+)$")
_STAMP_RE = re.compile(r"^(\d{2}:\d{2}:\d{2}\.\d{3}) (.*)$")
_MEAS_LINE_RE = re.compile(
    r"^(?P<pci>\d+)@(?P<channel>\d+)/(?P<rat>\dG) \((?P<role>\w+)\): "
    r"(?P<rsrp>-?\d+\.\d)dBm (?P<rsrq>-?\d+\.\d)dB$")
_SCELL_ENTRY_RE = re.compile(
    r"\{sCellIndex (\d+), physCellId (\d+), absoluteFrequencySSB (\d+)\}")


def _parse_block(time_s: float, head: str, body: list[str]) -> Record | None:
    """Parse one timestamped block into a record (None for ignorable)."""
    is_nr = head.startswith("NR5G")

    def cell() -> CellIdentity:
        for line in body:
            if "Physical Cell ID" in line:
                return _parse_cell_ref(line)
        raise NsgFormatError(f"no cell in block {head!r}")

    if "SystemInformationBlockType1" in head:
        threshold = -108.0
        for line in body:
            match = re.search(r"q-RxLevMin = (-?\d+)", line)
            if match:
                threshold = float(match.group(1))
        return SystemInfoRecord(time_s=time_s, cell=cell(),
                                selection_threshold_dbm=threshold)
    if "RRC Setup Req" in head:
        return RrcSetupRequestRecord(time_s=time_s, cell=cell())
    if "/ RRC Setup" in head:
        return RrcSetupRecord(time_s=time_s, cell=cell())
    if "RRCSetup Complete" in head:
        return RrcSetupCompleteRecord(time_s=time_s, cell=cell())
    if "MeasurementReport" in head:
        event_match = re.search(r"\(event (\w+)\)", head)
        event = event_match.group(1) if event_match else "periodic"
        measurements = []
        for line in body:
            match = _MEAS_LINE_RE.match(line)
            if match is None:
                continue
            rat = Rat.NR if match.group("rat") == "5G" else Rat.LTE
            measurements.append(CellMeasurement(
                CellIdentity(int(match.group("pci")),
                             int(match.group("channel")), rat),
                float(match.group("rsrp")), float(match.group("rsrq")),
                is_serving=match.group("role") == "serving"))
        return MeasurementReportRecord(time_s=time_s, event=event,
                                       measurements=tuple(measurements))
    if "/ RRCReconfiguration Complete" in head:
        return RrcReconfigurationCompleteRecord(time_s=time_s, pcell=cell())
    if "/ RRCReconfiguration" in head:
        pcell = cell()
        rat = Rat.NR if is_nr else Rat.LTE
        add_mod: list[ScellAddMod] = []
        release: tuple[int, ...] = ()
        handover = None
        scg_pscell = None
        scg_scells: tuple[CellIdentity, ...] = ()
        release_scg = False
        meas_events: list[tuple[str, int, float]] = []
        for line in body:
            if line.startswith("sCellToAddModList"):
                for index, pci, channel in _SCELL_ENTRY_RE.findall(line):
                    add_mod.append(ScellAddMod(
                        int(index), CellIdentity(int(pci), int(channel), rat)))
            elif line.startswith("sCellToReleaseList"):
                release = tuple(int(v) for v in re.findall(r"\d+", line))
            elif line.startswith("mobilityControlInfo"):
                match = re.search(r"targetPhysCellId (\d+) targetFreq (\d+)",
                                  line)
                if match:
                    handover = CellIdentity(int(match.group(1)),
                                            int(match.group(2)), rat)
            elif line.startswith("spCellConfig"):
                match = re.search(r"physCellId (\d+) freq (\d+)", line)
                if match:
                    scg_pscell = CellIdentity(int(match.group(1)),
                                              int(match.group(2)), Rat.NR)
                partner_match = re.search(r"scells (.+)$", line)
                if partner_match:
                    partners = []
                    for token in partner_match.group(1).split():
                        pci, channel = token.split("@")
                        partners.append(CellIdentity(int(pci), int(channel),
                                                     Rat.NR))
                    scg_scells = tuple(partners)
            elif line.startswith("scg-ToReleaseList"):
                release_scg = True
            elif line.startswith("measConfig"):
                match = re.search(r"event (\w+) on (\d+) threshold (-?\d+\.\d)",
                                  line)
                if match:
                    meas_events.append((match.group(1), int(match.group(2)),
                                        float(match.group(3))))
        return RrcReconfigurationRecord(
            time_s=time_s, pcell=pcell, scell_add_mod=tuple(add_mod),
            scell_release_indices=release, handover_target=handover,
            scg_pscell=scg_pscell, scg_scells=scg_scells,
            release_scg=release_scg, meas_events=tuple(meas_events))
    if "SCGFailureInformation" in head:
        failure_type = "randomAccessProblem"
        for line in body:
            match = re.search(r"failureType = (\w+)", line)
            if match:
                failure_type = match.group(1)
        return ScgFailureRecord(time_s=time_s, failure_type=failure_type)
    if "RRCReestablishmentRequest" in head:
        cause = "otherFailure"
        cell_ref = None
        for line in body:
            match = re.search(r"reestablishmentCause = (\w+)", line)
            if match:
                cause = match.group(1)
            if "Physical Cell ID" in line:
                cell_ref = _parse_cell_ref(line)
        return RrcReestablishmentRequestRecord(time_s=time_s, cause=cause,
                                               cell=cell_ref)
    if "RRCReestablishmentComplete" in head:
        return RrcReestablishmentCompleteRecord(time_s=time_s, cell=cell())
    if "RRCRelease" in head:
        return RrcReleaseRecord(time_s=time_s)
    if head.startswith("MM5G State"):
        state = head.split("=", 1)[1].strip()
        substate = ""
        for line in body:
            match = re.search(r"Substate = (\w+)", line)
            if match:
                substate = match.group(1)
        return MmStateRecord(time_s=time_s, state=state, substate=substate)
    raise NsgFormatError(f"unrecognised block head {head!r}")


def parse_nsg_text(text: str) -> SignalingTrace:
    """Parse NSG-style text back into a SignalingTrace."""
    trace = SignalingTrace()
    current: tuple[float, str, list[str]] | None = None

    def flush() -> None:
        if current is None:
            return
        record = _parse_block(*current)
        if record is not None:
            trace.append(record)

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        header = _HEADER_RE.match(line)
        if header is not None:
            trace.metadata = TraceMetadata(
                operator=header.group("operator"),
                area=header.group("area"),
                location=header.group("location"),
                device=header.group("device"),
                run_seed=int(header.group("seed")))
            continue
        stamped = _STAMP_RE.match(line)
        if stamped is not None:
            flush()
            hours_time = _parse_timestamp(stamped.group(1))
            current = (hours_time, stamped.group(2), [])
        elif line.startswith("  "):
            if current is None:
                raise NsgFormatError(
                    f"line {line_number}: continuation without a block")
            current[2].append(line.strip())
        else:
            raise NsgFormatError(f"line {line_number}: unparseable {line!r}")
    flush()
    return trace
