"""Signaling and throughput trace substrate.

Stands in for the paper's capture tooling (Network Signal Guru for RRC
signaling, tcpdump for throughput): the simulation half *emits* typed
log records, serialises them to JSONL, and the analysis half *parses*
them back.  The analysis code only ever sees what a real capture would
contain — timestamped RRC messages and measurement samples — never
simulator internals.
"""

from repro.traces.records import (
    CellMeasurement,
    MeasurementReportRecord,
    MmStateRecord,
    Record,
    RrcReconfigurationCompleteRecord,
    RrcReconfigurationRecord,
    RrcReestablishmentCompleteRecord,
    RrcReestablishmentRequestRecord,
    RrcReleaseRecord,
    RrcSetupCompleteRecord,
    RrcSetupRecord,
    RrcSetupRequestRecord,
    ScgFailureRecord,
    SystemInfoRecord,
    ThroughputSampleRecord,
)
from repro.traces.log import SignalingTrace
from repro.traces.parser import (
    ParseResult,
    TraceParseError,
    parse_jsonl,
    parse_record,
    parse_trace,
)

__all__ = [
    "CellMeasurement",
    "ParseResult",
    "MeasurementReportRecord",
    "MmStateRecord",
    "Record",
    "RrcReconfigurationCompleteRecord",
    "RrcReconfigurationRecord",
    "RrcReestablishmentCompleteRecord",
    "RrcReestablishmentRequestRecord",
    "RrcReleaseRecord",
    "RrcSetupCompleteRecord",
    "RrcSetupRecord",
    "RrcSetupRequestRecord",
    "ScgFailureRecord",
    "SignalingTrace",
    "SystemInfoRecord",
    "ThroughputSampleRecord",
    "TraceParseError",
    "parse_jsonl",
    "parse_record",
    "parse_trace",
]
