"""Parse serialized signaling traces back into typed records.

This is the entry point of the analysis half: whether a trace was just
simulated in-process or loaded from a JSONL file on disk, the loop
pipeline consumes parsed :class:`~repro.traces.records.Record` objects
and nothing else.
"""

from __future__ import annotations

import json

from repro.traces.log import SignalingTrace, TraceMetadata
from repro.traces.records import (
    CellMeasurement,
    MeasurementReportRecord,
    MmStateRecord,
    Record,
    RrcReconfigurationCompleteRecord,
    RrcReconfigurationRecord,
    RrcReestablishmentCompleteRecord,
    RrcReestablishmentRequestRecord,
    RrcReleaseRecord,
    RrcSetupCompleteRecord,
    RrcSetupRecord,
    RrcSetupRequestRecord,
    ScellAddMod,
    ScgFailureRecord,
    SystemInfoRecord,
    ThroughputSampleRecord,
    _decode_identity,
    _decode_optional_identity,
)


class TraceParseError(ValueError):
    """Raised on malformed trace input."""


def _parse_sys_info(t: float, data: dict) -> Record:
    return SystemInfoRecord(time_s=t, cell=_decode_identity(data["cell"]),
                            selection_threshold_dbm=float(data["threshold"]))


def _parse_setup_request(t: float, data: dict) -> Record:
    return RrcSetupRequestRecord(time_s=t, cell=_decode_identity(data["cell"]))


def _parse_setup(t: float, data: dict) -> Record:
    return RrcSetupRecord(time_s=t, cell=_decode_identity(data["cell"]))


def _parse_setup_complete(t: float, data: dict) -> Record:
    return RrcSetupCompleteRecord(time_s=t, cell=_decode_identity(data["cell"]))


def _parse_meas_report(t: float, data: dict) -> Record:
    measurements = tuple(CellMeasurement.from_dict(m) for m in data["meas"])
    return MeasurementReportRecord(time_s=t, event=str(data["event"]),
                                   measurements=measurements)


def _parse_reconfiguration(t: float, data: dict) -> Record:
    return RrcReconfigurationRecord(
        time_s=t,
        pcell=_decode_identity(data["pcell"]),
        scell_add_mod=tuple(ScellAddMod.from_dict(e) for e in data["scell_add_mod"]),
        scell_release_indices=tuple(int(i) for i in data["scell_release"]),
        handover_target=_decode_optional_identity(data["handover"]),
        scg_pscell=_decode_optional_identity(data["scg_pscell"]),
        scg_scells=tuple(_decode_identity(c) for c in data["scg_scells"]),
        release_scg=bool(data["release_scg"]),
        meas_events=tuple((str(e[0]), int(e[1]), float(e[2]))
                          for e in data["meas_events"]),
    )


def _parse_reconfiguration_complete(t: float, data: dict) -> Record:
    return RrcReconfigurationCompleteRecord(time_s=t,
                                            pcell=_decode_identity(data["pcell"]))


def _parse_scg_failure(t: float, data: dict) -> Record:
    return ScgFailureRecord(time_s=t, failure_type=str(data["failure_type"]))


def _parse_reestablishment_request(t: float, data: dict) -> Record:
    return RrcReestablishmentRequestRecord(
        time_s=t, cause=str(data["cause"]),
        cell=_decode_optional_identity(data.get("cell")))


def _parse_reestablishment_complete(t: float, data: dict) -> Record:
    return RrcReestablishmentCompleteRecord(time_s=t,
                                            cell=_decode_identity(data["cell"]))


def _parse_release(t: float, data: dict) -> Record:
    return RrcReleaseRecord(time_s=t)


def _parse_mm_state(t: float, data: dict) -> Record:
    return MmStateRecord(time_s=t, state=str(data["state"]),
                         substate=str(data.get("substate", "")))


def _parse_throughput(t: float, data: dict) -> Record:
    return ThroughputSampleRecord(time_s=t, mbps=float(data["mbps"]))


_PARSERS = {
    "sys_info": _parse_sys_info,
    "rrc_setup_request": _parse_setup_request,
    "rrc_setup": _parse_setup,
    "rrc_setup_complete": _parse_setup_complete,
    "meas_report": _parse_meas_report,
    "rrc_reconfiguration": _parse_reconfiguration,
    "rrc_reconfiguration_complete": _parse_reconfiguration_complete,
    "scg_failure": _parse_scg_failure,
    "rrc_reestablishment_request": _parse_reestablishment_request,
    "rrc_reestablishment_complete": _parse_reestablishment_complete,
    "rrc_release": _parse_release,
    "mm_state": _parse_mm_state,
    "throughput": _parse_throughput,
}


def parse_record(data: dict) -> Record:
    """Parse one decoded JSON object into a typed record."""
    try:
        kind = data["kind"]
        time_s = float(data["t"])
    except (KeyError, TypeError, ValueError) as error:
        raise TraceParseError(f"record missing kind/time: {data!r}") from error
    parser = _PARSERS.get(kind)
    if parser is None:
        raise TraceParseError(f"unknown record kind {kind!r}")
    try:
        return parser(time_s, data)
    except (KeyError, TypeError, ValueError) as error:
        raise TraceParseError(f"malformed {kind} record: {data!r}") from error


def parse_jsonl(text: str) -> SignalingTrace:
    """Parse a JSONL trace (metadata header + records) into a SignalingTrace."""
    trace = SignalingTrace()
    for line_number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError as error:
            raise TraceParseError(f"line {line_number}: invalid JSON") from error
        if "meta" in data:
            trace.metadata = TraceMetadata.from_dict(data["meta"])
            continue
        trace.append(parse_record(data))
    return trace
