"""Parse serialized signaling traces back into typed records.

This is the entry point of the analysis half: whether a trace was just
simulated in-process or loaded from a JSONL file on disk, the loop
pipeline consumes parsed :class:`~repro.traces.records.Record` objects
and nothing else.

Real captures are messy, so ingestion has two modes:

* ``errors="strict"`` (default) — the first malformed line raises a
  :class:`~repro.resilience.errors.TraceParseError` subclass carrying
  the line number and record kind.
* ``errors="recover"`` — malformed lines are quarantined into the
  returned :class:`~repro.resilience.ingest.ParseReport` and parsing
  continues, so a corrupt trace degrades to "every decodable record,
  plus an audit of what was skipped" instead of an exception.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs import get_instrumentation
from repro.resilience.errors import (
    MalformedHeaderError,
    MalformedRecordError,
    OutOfOrderRecordError,
    TraceDecodeError,
    TraceParseError,
    UnknownRecordKindError,
)
from repro.resilience.ingest import ParseReport
from repro.traces.log import SignalingTrace, TraceMetadata
from repro.traces.records import (
    CellMeasurement,
    MeasurementReportRecord,
    MmStateRecord,
    Record,
    RrcReconfigurationCompleteRecord,
    RrcReconfigurationRecord,
    RrcReestablishmentCompleteRecord,
    RrcReestablishmentRequestRecord,
    RrcReleaseRecord,
    RrcSetupCompleteRecord,
    RrcSetupRecord,
    RrcSetupRequestRecord,
    ScellAddMod,
    ScgFailureRecord,
    SystemInfoRecord,
    ThroughputSampleRecord,
    _decode_identity,
    _decode_optional_identity,
)

__all__ = [
    "ParseResult",
    "TraceParseError",
    "parse_jsonl",
    "parse_record",
    "parse_trace",
]


def _parse_sys_info(t: float, data: dict) -> Record:
    return SystemInfoRecord(time_s=t, cell=_decode_identity(data["cell"]),
                            selection_threshold_dbm=float(data["threshold"]))


def _parse_setup_request(t: float, data: dict) -> Record:
    return RrcSetupRequestRecord(time_s=t, cell=_decode_identity(data["cell"]))


def _parse_setup(t: float, data: dict) -> Record:
    return RrcSetupRecord(time_s=t, cell=_decode_identity(data["cell"]))


def _parse_setup_complete(t: float, data: dict) -> Record:
    return RrcSetupCompleteRecord(time_s=t, cell=_decode_identity(data["cell"]))


def _parse_meas_report(t: float, data: dict) -> Record:
    measurements = tuple(CellMeasurement.from_dict(m) for m in data["meas"])
    return MeasurementReportRecord(time_s=t, event=str(data["event"]),
                                   measurements=measurements)


def _parse_reconfiguration(t: float, data: dict) -> Record:
    return RrcReconfigurationRecord(
        time_s=t,
        pcell=_decode_identity(data["pcell"]),
        scell_add_mod=tuple(ScellAddMod.from_dict(e) for e in data["scell_add_mod"]),
        scell_release_indices=tuple(int(i) for i in data["scell_release"]),
        handover_target=_decode_optional_identity(data["handover"]),
        scg_pscell=_decode_optional_identity(data["scg_pscell"]),
        scg_scells=tuple(_decode_identity(c) for c in data["scg_scells"]),
        release_scg=bool(data["release_scg"]),
        meas_events=tuple((str(e[0]), int(e[1]), float(e[2]))
                          for e in data["meas_events"]),
    )


def _parse_reconfiguration_complete(t: float, data: dict) -> Record:
    return RrcReconfigurationCompleteRecord(time_s=t,
                                            pcell=_decode_identity(data["pcell"]))


def _parse_scg_failure(t: float, data: dict) -> Record:
    return ScgFailureRecord(time_s=t, failure_type=str(data["failure_type"]))


def _parse_reestablishment_request(t: float, data: dict) -> Record:
    return RrcReestablishmentRequestRecord(
        time_s=t, cause=str(data["cause"]),
        cell=_decode_optional_identity(data.get("cell")))


def _parse_reestablishment_complete(t: float, data: dict) -> Record:
    return RrcReestablishmentCompleteRecord(time_s=t,
                                            cell=_decode_identity(data["cell"]))


def _parse_release(t: float, data: dict) -> Record:
    return RrcReleaseRecord(time_s=t)


def _parse_mm_state(t: float, data: dict) -> Record:
    return MmStateRecord(time_s=t, state=str(data["state"]),
                         substate=str(data.get("substate", "")))


def _parse_throughput(t: float, data: dict) -> Record:
    return ThroughputSampleRecord(time_s=t, mbps=float(data["mbps"]))


_PARSERS = {
    "sys_info": _parse_sys_info,
    "rrc_setup_request": _parse_setup_request,
    "rrc_setup": _parse_setup,
    "rrc_setup_complete": _parse_setup_complete,
    "meas_report": _parse_meas_report,
    "rrc_reconfiguration": _parse_reconfiguration,
    "rrc_reconfiguration_complete": _parse_reconfiguration_complete,
    "scg_failure": _parse_scg_failure,
    "rrc_reestablishment_request": _parse_reestablishment_request,
    "rrc_reestablishment_complete": _parse_reestablishment_complete,
    "rrc_release": _parse_release,
    "mm_state": _parse_mm_state,
    "throughput": _parse_throughput,
}


def record_kinds() -> tuple[str, ...]:
    """All record kinds the parser knows (fault-injection test surface)."""
    return tuple(_PARSERS)


def parse_record(data: dict, *, line_number: int | None = None) -> Record:
    """Parse one decoded JSON object into a typed record.

    All malformed input — missing keys, wrong types, undecodable nested
    structures — surfaces as a :class:`TraceParseError` subclass tagged
    with ``line_number`` and the record kind, never as a bare
    ``KeyError``/``TypeError``/``ValueError`` from a decoder.
    """
    kind = data.get("kind") if isinstance(data, dict) else None
    kind_label = kind if isinstance(kind, str) else "?"
    try:
        time_s = float(data["t"])
        if kind is None:
            raise KeyError("kind")
    except (KeyError, TypeError, ValueError) as error:
        raise MalformedRecordError(f"record missing kind/time: {data!r}",
                                   line_number=line_number,
                                   record_kind=kind_label) from error
    parser = _PARSERS.get(kind)
    if parser is None:
        raise UnknownRecordKindError(f"unknown record kind {kind!r}",
                                     line_number=line_number,
                                     record_kind=kind_label)
    try:
        return parser(time_s, data)
    except (KeyError, TypeError, ValueError, IndexError) as error:
        raise MalformedRecordError(f"malformed {kind} record: {data!r}",
                                   line_number=line_number,
                                   record_kind=kind_label) from error


@dataclass
class ParseResult:
    """A parsed trace plus the ingestion accounting that produced it."""

    trace: SignalingTrace
    report: ParseReport


def _ingest_line(trace: SignalingTrace, report: ParseReport, stripped: str,
                 line_number: int) -> None:
    """Decode and apply one JSONL line, raising typed errors on failure."""
    try:
        data = json.loads(stripped)
    except json.JSONDecodeError as error:
        raise TraceDecodeError("invalid JSON", line_number=line_number,
                               record_kind="json") from error
    if not isinstance(data, dict):
        raise TraceDecodeError("expected a JSON object",
                               line_number=line_number, record_kind="json")
    if "meta" in data:
        try:
            trace.metadata = TraceMetadata.from_dict(data["meta"])
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            raise MalformedHeaderError(f"malformed meta header: {error}",
                                       line_number=line_number,
                                       record_kind="meta") from error
        report.header_parsed = True
        return
    record = parse_record(data, line_number=line_number)
    try:
        trace.append(record)
    except ValueError as error:
        raise OutOfOrderRecordError(str(error), line_number=line_number,
                                    record_kind=record.kind) from error
    report.record_success()


def parse_trace(text: str, errors: str = "strict") -> ParseResult:
    """Parse a JSONL trace into a :class:`ParseResult`.

    ``errors="strict"`` raises on the first malformed line;
    ``errors="recover"`` quarantines malformed lines into the report and
    keeps every record that decodes cleanly (records arriving out of
    time order are quarantined too, preserving the trace invariant).
    """
    if errors not in ("strict", "recover"):
        raise ValueError(f'errors must be "strict" or "recover", '
                         f'got {errors!r}')
    trace = SignalingTrace()
    report = ParseReport()
    obs = get_instrumentation()
    try:
        with obs.tracer.span("parse", errors=errors), \
                obs.registry.timer("stage_seconds", stage="parse"):
            for line_number, line in enumerate(text.splitlines(), start=1):
                report.total_lines += 1
                stripped = line.strip()
                if not stripped:
                    report.blank_lines += 1
                    continue
                try:
                    _ingest_line(trace, report, stripped, line_number)
                except TraceParseError as error:
                    if errors == "strict":
                        raise
                    report.record_error(error, stripped)
    finally:
        # Flush tallies even when strict mode raises mid-trace, so a
        # failed ingestion is still accountable in the metrics export.
        _flush_parse_metrics(obs, report)
    return ParseResult(trace=trace, report=report)


def _flush_parse_metrics(obs, report: ParseReport) -> None:
    """Report one ingestion's tallies into the metrics registry."""
    if report.quarantine and obs.events.enabled:
        obs.events.emit("parse.records_quarantined", severity="warning",
                        skipped=report.skipped_records,
                        total_lines=report.total_lines,
                        errors={cls: report.errors_by_class[cls]
                                for cls in sorted(report.errors_by_class)})
    if not obs.registry.enabled:
        return
    registry = obs.registry
    registry.counter("trace_lines_total").inc(report.total_lines)
    registry.counter("trace_records_parsed_total").inc(report.parsed_records)
    for error_class in sorted(report.errors_by_class):
        registry.counter("trace_records_skipped_total").inc(
            report.errors_by_class[error_class], error=error_class)


def parse_jsonl(text: str, errors: str = "strict") -> SignalingTrace:
    """Parse a JSONL trace (metadata header + records) into a SignalingTrace."""
    return parse_trace(text, errors=errors).trace
