"""Cooperative per-run wall-clock deadlines.

A campaign run is given a wall-clock budget (``CampaignConfig.
run_timeout_s``).  Inside one process the budget is enforced
*cooperatively*: the runner opens a :func:`deadline_scope` around each
attempt, and the pipeline calls :func:`check_deadline` between stages,
raising :class:`RunTimeoutError` as soon as the budget is exhausted.
The error is an ordinary ``Exception``, so it flows through the
existing retry/quarantine machinery like any other run failure.

Cooperative checks cannot interrupt a stage that never returns; that
case is handled one level up by the process-pool supervisor
(:mod:`repro.resilience.supervision`), which kills and respawns hung
workers on a parent-side future deadline.

This module lives in ``repro.core`` (not ``repro.resilience``) so the
pipeline can import it without pulling in the resilience package, whose
``__init__`` reaches back into the campaign layer.  Like
:mod:`repro.obs.context`, the active deadline is ambient state: hot
paths pay a module-global read and a ``None`` check when no deadline
is set.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "Deadline",
    "RunTimeoutError",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]


class RunTimeoutError(RuntimeError):
    """A run exceeded its wall-clock budget.

    Raised by cooperative :func:`check_deadline` calls between pipeline
    stages (carrying the stage that detected the overrun), and used by
    the pool supervisor to label runs whose worker had to be killed.
    """

    def __init__(self, message: str, *, budget_s: float | None = None,
                 elapsed_s: float | None = None, stage: str | None = None):
        super().__init__(message)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s
        self.stage = stage


class Deadline:
    """One wall-clock budget, armed at construction time."""

    __slots__ = ("budget_s", "clock", "started_s")

    def __init__(self, budget_s: float,
                 clock: Callable[[], float] = time.monotonic):
        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_s = budget_s
        self.clock = clock
        self.started_s = clock()

    def elapsed_s(self) -> float:
        return self.clock() - self.started_s

    def remaining_s(self) -> float:
        return self.budget_s - self.elapsed_s()

    def expired(self) -> bool:
        return self.remaining_s() <= 0.0

    def check(self, stage: str = "") -> None:
        """Raise :class:`RunTimeoutError` if the budget is exhausted."""
        elapsed = self.elapsed_s()
        if elapsed <= self.budget_s:
            return
        where = f" at stage '{stage}'" if stage else ""
        raise RunTimeoutError(
            f"run exceeded its {self.budget_s:g}s wall-clock budget"
            f"{where} ({elapsed:.3f}s elapsed)",
            budget_s=self.budget_s, elapsed_s=elapsed, stage=stage or None)


#: The ambient deadline cooperative checks test against (None = no budget).
_active: Deadline | None = None


def current_deadline() -> Deadline | None:
    """The deadline in effect for the code running right now, if any."""
    return _active


@contextmanager
def deadline_scope(budget_s: float | None,
                   clock: Callable[[], float] = time.monotonic,
                   ) -> Iterator[Deadline | None]:
    """Arm a deadline for the duration of the block (re-entrant).

    ``budget_s=None`` installs nothing, so callers can pass the config
    knob straight through without branching.
    """
    global _active
    if budget_s is None:
        yield None
        return
    previous = _active
    _active = deadline = Deadline(budget_s, clock=clock)
    try:
        yield deadline
    finally:
        _active = previous


def check_deadline(stage: str = "") -> None:
    """Cooperative checkpoint: no-op without an armed deadline."""
    if _active is not None:
        _active.check(stage)
