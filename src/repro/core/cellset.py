"""Serving cell set extraction (the paper's Appendix B).

The serving cell set (CS) at any instant is the PCell plus the MCG
SCells plus, over NSA, the SCG.  The sequence of cell sets is retrieved
by replaying the RRC signaling messages:

* RRC Setup Complete / Reestablishment Complete -> new PCell, empty set;
* RRC Reconfiguration -> apply ``sCellToAddModList`` (index -> cell) and
  ``sCellToReleaseList`` (indices!), PCell handovers, SCG setup/release;
* RRC Release, a Reestablishment *Request*, or an MM5G DEREGISTERED
  state line -> everything released (IDLE).

The index bookkeeping matters: ``sCellToReleaseList {3}`` only says
"release sCellIndex 3" — which cell that is depends on the add/mod
history, exactly as in Figure 26.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.cell import CellIdentity, Rat
from repro.traces.records import (
    MmStateRecord,
    Record,
    RrcReconfigurationRecord,
    RrcReestablishmentCompleteRecord,
    RrcReestablishmentRequestRecord,
    RrcReleaseRecord,
    RrcSetupCompleteRecord,
)


@dataclass(frozen=True)
class CellSet:
    """One serving cell set (immutable, hashable)."""

    pcell: CellIdentity | None = None
    mcg_scells: frozenset[CellIdentity] = frozenset()
    scg_pscell: CellIdentity | None = None
    scg_scells: frozenset[CellIdentity] = frozenset()

    @property
    def is_idle(self) -> bool:
        return self.pcell is None

    @property
    def five_g_on(self) -> bool:
        """The paper's 5G ON definition: any 5G resource actively used."""
        if self.pcell is not None and self.pcell.rat is Rat.NR:
            return True
        return self.scg_pscell is not None

    def all_cells(self) -> frozenset[CellIdentity]:
        cells: set[CellIdentity] = set()
        if self.pcell is not None:
            cells.add(self.pcell)
        cells.update(self.mcg_scells)
        if self.scg_pscell is not None:
            cells.add(self.scg_pscell)
        cells.update(self.scg_scells)
        return frozenset(cells)

    def nr_cells(self) -> frozenset[CellIdentity]:
        return frozenset(cell for cell in self.all_cells() if cell.rat is Rat.NR)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_idle:
            return "{IDLE}"
        parts = [f"P:{self.pcell.notation}"]
        parts.extend(f"S:{cell.notation}" for cell in sorted(self.mcg_scells))
        if self.scg_pscell is not None:
            parts.append(f"PS:{self.scg_pscell.notation}")
            parts.extend(f"SS:{cell.notation}" for cell in sorted(self.scg_scells))
        return "{" + ", ".join(parts) + "}"


IDLE_CELLSET = CellSet()


@dataclass(frozen=True)
class CellSetInterval:
    """One cell set holding over a time interval."""

    cellset: CellSet
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class _CellSetTracker:
    """Replays signaling records to maintain the current cell set."""

    def __init__(self) -> None:
        self.pcell: CellIdentity | None = None
        self.scell_table: dict[int, CellIdentity] = {}
        self.scg_pscell: CellIdentity | None = None
        self.scg_scells: tuple[CellIdentity, ...] = ()

    def snapshot(self) -> CellSet:
        return CellSet(
            pcell=self.pcell,
            mcg_scells=frozenset(self.scell_table.values()),
            scg_pscell=self.scg_pscell,
            scg_scells=frozenset(self.scg_scells),
        )

    def _reset(self) -> None:
        self.pcell = None
        self.scell_table.clear()
        self.scg_pscell = None
        self.scg_scells = ()

    def apply(self, record: Record) -> bool:
        """Apply one record; returns True if the cell set may have changed."""
        if isinstance(record, (RrcSetupCompleteRecord, RrcReestablishmentCompleteRecord)):
            self._reset()
            self.pcell = record.cell
            return True
        if isinstance(record, RrcReestablishmentRequestRecord):
            self._reset()
            return True
        if isinstance(record, RrcReleaseRecord):
            self._reset()
            return True
        if isinstance(record, MmStateRecord):
            if record.state == "DEREGISTERED":
                self._reset()
                return True
            return False
        if isinstance(record, RrcReconfigurationRecord):
            return self._apply_reconfiguration(record)
        return False

    def _apply_reconfiguration(self, record: RrcReconfigurationRecord) -> bool:
        changed = False
        if record.handover_target is not None:
            self.pcell = record.handover_target
            self.scell_table.clear()
            changed = True
        for index in record.scell_release_indices:
            if self.scell_table.pop(index, None) is not None:
                changed = True
        for entry in record.scell_add_mod:
            self.scell_table[entry.scell_index] = entry.identity
            changed = True
        if record.release_scg and (self.scg_pscell is not None or self.scg_scells):
            self.scg_pscell = None
            self.scg_scells = ()
            changed = True
        if record.scg_pscell is not None:
            self.scg_pscell = record.scg_pscell
            self.scg_scells = tuple(record.scg_scells)
            changed = True
        return changed


def extract_cellset_sequence(records: list[Record],
                             end_time_s: float | None = None) -> list[CellSetInterval]:
    """Replay a record list into the sequence of serving cell sets.

    Consecutive identical cell sets are merged; the sequence always
    starts at the first record's time (IDLE if the trace starts before
    any setup).

    Consecutive state-changing records sharing a timestamp (a release
    immediately re-logged as a setup, say) never emit a zero-duration
    interval: the last state recorded at that instant wins.  Without
    this, downstream ``five_g_timeline``/``loop_cycles`` can see
    degenerate zero-width ON segments and produce ``on_s == 0`` cycles.
    """
    tracker = _CellSetTracker()
    intervals: list[CellSetInterval] = []
    if not records:
        return intervals
    current = tracker.snapshot()
    current_start = records[0].time_s
    last_time = records[0].time_s
    for record in records:
        last_time = record.time_s
        if not tracker.apply(record):
            continue
        new_set = tracker.snapshot()
        if new_set == current:
            continue
        if record.time_s == current_start:
            # Same-timestamp state change: replace the pending state
            # instead of emitting a zero-width interval.  If the new
            # state matches the previous interval's, the split was
            # transient — merge back into it.
            if intervals and intervals[-1].cellset == new_set \
                    and intervals[-1].end_s == current_start:
                current_start = intervals.pop().start_s
            current = new_set
            continue
        intervals.append(CellSetInterval(current, current_start, record.time_s))
        current = new_set
        current_start = record.time_s
    final_end = end_time_s if end_time_s is not None else last_time
    final_end = max(final_end, current_start)
    if final_end > current_start or not intervals:
        intervals.append(CellSetInterval(current, current_start, final_end))
    return intervals


def five_g_timeline(intervals: list[CellSetInterval]) -> list[tuple[bool, float, float]]:
    """Collapse a cell set sequence into (is_on, start, end) segments."""
    segments: list[tuple[bool, float, float]] = []
    for interval in intervals:
        on = interval.cellset.five_g_on
        if segments and segments[-1][0] == on:
            previous = segments[-1]
            segments[-1] = (on, previous[1], interval.end_s)
        else:
            segments.append((on, interval.start_s, interval.end_s))
    return segments
