"""Serving cell set extraction (the paper's Appendix B).

The serving cell set (CS) at any instant is the PCell plus the MCG
SCells plus, over NSA, the SCG.  The sequence of cell sets is retrieved
by replaying the RRC signaling messages:

* RRC Setup Complete / Reestablishment Complete -> new PCell, empty set;
* RRC Reconfiguration -> apply ``sCellToAddModList`` (index -> cell) and
  ``sCellToReleaseList`` (indices!), PCell handovers, SCG setup/release;
* RRC Release, a Reestablishment *Request*, or an MM5G DEREGISTERED
  state line -> everything released (IDLE).

The index bookkeeping matters: ``sCellToReleaseList {3}`` only says
"release sCellIndex 3" — which cell that is depends on the add/mod
history, exactly as in Figure 26.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cells.cell import CellIdentity, Rat
from repro.traces.records import (
    MmStateRecord,
    Record,
    RrcReconfigurationRecord,
    RrcReestablishmentCompleteRecord,
    RrcReestablishmentRequestRecord,
    RrcReleaseRecord,
    RrcSetupCompleteRecord,
)


@dataclass(frozen=True)
class CellSet:
    """One serving cell set (immutable, hashable)."""

    pcell: CellIdentity | None = None
    mcg_scells: frozenset[CellIdentity] = frozenset()
    scg_pscell: CellIdentity | None = None
    scg_scells: frozenset[CellIdentity] = frozenset()

    @property
    def is_idle(self) -> bool:
        return self.pcell is None

    @property
    def five_g_on(self) -> bool:
        """The paper's 5G ON definition: any 5G resource actively used."""
        if self.pcell is not None and self.pcell.rat is Rat.NR:
            return True
        return self.scg_pscell is not None

    def all_cells(self) -> frozenset[CellIdentity]:
        cells: set[CellIdentity] = set()
        if self.pcell is not None:
            cells.add(self.pcell)
        cells.update(self.mcg_scells)
        if self.scg_pscell is not None:
            cells.add(self.scg_pscell)
        cells.update(self.scg_scells)
        return frozenset(cells)

    def nr_cells(self) -> frozenset[CellIdentity]:
        return frozenset(cell for cell in self.all_cells() if cell.rat is Rat.NR)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_idle:
            return "{IDLE}"
        parts = [f"P:{self.pcell.notation}"]
        parts.extend(f"S:{cell.notation}" for cell in sorted(self.mcg_scells))
        if self.scg_pscell is not None:
            parts.append(f"PS:{self.scg_pscell.notation}")
            parts.extend(f"SS:{cell.notation}" for cell in sorted(self.scg_scells))
        return "{" + ", ".join(parts) + "}"


IDLE_CELLSET = CellSet()


@dataclass(frozen=True)
class CellSetInterval:
    """One cell set holding over a time interval."""

    cellset: CellSet
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class _CellSetTracker:
    """Replays signaling records to maintain the current cell set."""

    def __init__(self) -> None:
        self.pcell: CellIdentity | None = None
        self.scell_table: dict[int, CellIdentity] = {}
        self.scg_pscell: CellIdentity | None = None
        self.scg_scells: tuple[CellIdentity, ...] = ()

    def snapshot(self) -> CellSet:
        return CellSet(
            pcell=self.pcell,
            mcg_scells=frozenset(self.scell_table.values()),
            scg_pscell=self.scg_pscell,
            scg_scells=frozenset(self.scg_scells),
        )

    def _reset(self) -> None:
        self.pcell = None
        self.scell_table.clear()
        self.scg_pscell = None
        self.scg_scells = ()

    def apply(self, record: Record) -> bool:
        """Apply one record; returns True if the cell set may have changed."""
        if isinstance(record, (RrcSetupCompleteRecord, RrcReestablishmentCompleteRecord)):
            self._reset()
            self.pcell = record.cell
            return True
        if isinstance(record, RrcReestablishmentRequestRecord):
            self._reset()
            return True
        if isinstance(record, RrcReleaseRecord):
            self._reset()
            return True
        if isinstance(record, MmStateRecord):
            if record.state == "DEREGISTERED":
                self._reset()
                return True
            return False
        if isinstance(record, RrcReconfigurationRecord):
            return self._apply_reconfiguration(record)
        return False

    def _apply_reconfiguration(self, record: RrcReconfigurationRecord) -> bool:
        changed = False
        if record.handover_target is not None:
            self.pcell = record.handover_target
            self.scell_table.clear()
            changed = True
        for index in record.scell_release_indices:
            if self.scell_table.pop(index, None) is not None:
                changed = True
        for entry in record.scell_add_mod:
            self.scell_table[entry.scell_index] = entry.identity
            changed = True
        if record.release_scg and (self.scg_pscell is not None or self.scg_scells):
            self.scg_pscell = None
            self.scg_scells = ()
            changed = True
        if record.scg_pscell is not None:
            self.scg_pscell = record.scg_pscell
            self.scg_scells = tuple(record.scg_scells)
            changed = True
        return changed


#: Timestamp regressions within this tolerance are clock jitter, not
#: reordering — the same slack :meth:`SignalingTrace.append` allows.
_TIME_TOLERANCE_S = 1e-9


class CellSetSequenceBuilder:
    """Streaming form of :func:`extract_cellset_sequence`.

    Records are :meth:`push`-ed one at a time; :attr:`intervals` grows
    as cell-set changes are committed and :meth:`finish` flushes the
    pending interval.  The batch function is a thin wrapper, so the two
    are identical by construction.

    Stability contract (what the incremental analyzer relies on): after
    pushing a record at time ``t``, every interval with ``end_s < t``
    is final — only the *last* interval can still be reabsorbed, and
    only by a same-instant state change (``end_s == t``).

    Out-of-order records — timestamps regressing by more than the
    trace's own 1e-9 jitter tolerance, which live streams will deliver
    — are handled per ``on_disorder``: ``"strict"`` raises
    :class:`~repro.resilience.errors.OutOfOrderRecordError`;
    ``"recover"`` clamps the record to the running maximum time and
    counts it (``records_out_of_order_total`` plus the
    :attr:`records_out_of_order` tally).  Without the clamp the builder
    would silently emit negative-duration intervals.
    """

    def __init__(self, *, on_disorder: str = "strict") -> None:
        if on_disorder not in ("strict", "recover"):
            raise ValueError(f"unknown on_disorder mode: {on_disorder!r}")
        self._tracker = _CellSetTracker()
        self._on_disorder = on_disorder
        self._started = False
        self._current: CellSet = IDLE_CELLSET
        self._current_start = 0.0
        self._last_time = 0.0
        #: Committed intervals (see the stability contract above).
        self.intervals: list[CellSetInterval] = []
        #: Intervals ever committed (stays correct when a live consumer
        #: drains :attr:`intervals`; merge-back pops do decrement it).
        self.committed = 0
        #: Out-of-order records seen so far (recover mode only).
        self.records_out_of_order = 0

    @property
    def last_time_s(self) -> float:
        """The running maximum record time (0.0 before any record)."""
        return self._last_time

    def push(self, record: Record) -> None:
        """Feed one record; may commit intervals into :attr:`intervals`."""
        time_s = record.time_s
        if self._started and time_s < self._last_time:
            if self._last_time - time_s > _TIME_TOLERANCE_S:
                if self._on_disorder == "strict":
                    from repro.resilience.errors import OutOfOrderRecordError
                    raise OutOfOrderRecordError(
                        f"record at t={time_s} precedes stream tail "
                        f"t={self._last_time}",
                        record_kind=getattr(record, "kind", None))
                self.records_out_of_order += 1
                from repro.obs import get_instrumentation
                get_instrumentation().registry.counter(
                    "records_out_of_order_total").inc()
            # Clamp: jitter-sized regressions in either mode, genuine
            # reordering in recover mode.  Effective times stay
            # non-decreasing, so no negative-duration interval can form.
            time_s = self._last_time
        if not self._started:
            self._started = True
            self._current = self._tracker.snapshot()
            self._current_start = time_s
        self._last_time = time_s
        if not self._tracker.apply(record):
            return
        new_set = self._tracker.snapshot()
        if new_set == self._current:
            return
        if time_s == self._current_start:
            # Same-timestamp state change: replace the pending state
            # instead of emitting a zero-width interval.  If the new
            # state matches the previous interval's, the split was
            # transient — merge back into it.
            if self.intervals and self.intervals[-1].cellset == new_set \
                    and self.intervals[-1].end_s == self._current_start:
                self._current_start = self.intervals.pop().start_s
                self.committed -= 1
            self._current = new_set
            return
        self.intervals.append(
            CellSetInterval(self._current, self._current_start, time_s))
        self.committed += 1
        self._current = new_set
        self._current_start = time_s

    def finish(self, end_time_s: float | None = None) -> list[CellSetInterval]:
        """Flush the pending interval and return the full sequence."""
        if not self._started:
            return self.intervals
        final_end = end_time_s if end_time_s is not None else self._last_time
        final_end = max(final_end, self._current_start)
        if final_end > self._current_start or self.committed == 0:
            self.intervals.append(
                CellSetInterval(self._current, self._current_start, final_end))
            self.committed += 1
        return self.intervals


def extract_cellset_sequence(records: list[Record],
                             end_time_s: float | None = None,
                             *, on_disorder: str = "strict",
                             ) -> list[CellSetInterval]:
    """Replay a record list into the sequence of serving cell sets.

    Consecutive identical cell sets are merged; the sequence always
    starts at the first record's time (IDLE if the trace starts before
    any setup).

    Consecutive state-changing records sharing a timestamp (a release
    immediately re-logged as a setup, say) never emit a zero-duration
    interval: the last state recorded at that instant wins.  Without
    this, downstream ``five_g_timeline``/``loop_cycles`` can see
    degenerate zero-width ON segments and produce ``on_s == 0`` cycles.

    Regressing timestamps raise
    :class:`~repro.resilience.errors.OutOfOrderRecordError` by default;
    ``on_disorder="recover"`` clamps and counts them instead (see
    :class:`CellSetSequenceBuilder`).
    """
    builder = CellSetSequenceBuilder(on_disorder=on_disorder)
    for record in records:
        builder.push(record)
    return builder.finish(end_time_s)


def five_g_timeline(intervals: list[CellSetInterval]) -> list[tuple[bool, float, float]]:
    """Collapse a cell set sequence into (is_on, start, end) segments.

    Adjacent same-state intervals merge only when they are contiguous
    (``segments[-1][2] == interval.start_s``): a gap between intervals
    (dropped stream chunks) must not be silently absorbed into ON/OFF
    time.  Batch-extracted sequences are always contiguous, so their
    segments are unchanged.
    """
    segments: list[tuple[bool, float, float]] = []
    for interval in intervals:
        on = interval.cellset.five_g_on
        if segments and segments[-1][0] == on \
                and segments[-1][2] == interval.start_s:
            previous = segments[-1]
            segments[-1] = (on, previous[1], interval.end_s)
        else:
            segments.append((on, interval.start_s, interval.end_s))
    return segments
