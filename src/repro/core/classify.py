"""Loop sub-type classification (Figures 13-15).

Every 5G-OFF transition is classified from the signaling records around
it, exactly the way the paper's cause analysis works:

* an ``SCGFailureInformation`` just before the OFF -> **N2E2**;
* a reestablishment request with ``handoverFailure`` -> **N1E2**,
  with ``otherFailure`` (a radio link failure) -> **N1E1**;
* a handover reconfiguration that releases the SCG -> **N2E1**;
* an SCG release without a failure report -> the legacy **A2-B1** loop
  of prior work (F12; absent with current operator policies);
* an ``MM5G DEREGISTERED`` exception over SA splits into the three S1
  sub-types: a just-commanded SCell modification -> **S1E3**; a serving
  SCell missing from every recent measurement report -> **S1E1**; a
  serving SCell persistently reporting very poor RSRQ -> **S1E2**.

A loop's sub-type is the majority vote over its OFF transitions.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.cells.cell import CellIdentity, Rat
from repro.core.cellset import CellSet, CellSetInterval, five_g_timeline
from repro.traces.records import (
    MeasurementReportRecord,
    MmStateRecord,
    Record,
    RrcReconfigurationRecord,
    RrcReestablishmentRequestRecord,
    ScgFailureRecord,
)

# How far around an OFF transition we look for its trigger.
_TRIGGER_WINDOW_BEFORE_S = 2.5
_TRIGGER_WINDOW_AFTER_S = 0.6
_REPORT_LOOKBACK_S = 8.0
_POOR_RSRQ_DB = -19.9


class LoopSubtype(enum.Enum):
    """The paper's seven loop sub-types plus the legacy and unknown buckets."""

    S1E1 = "S1E1"
    S1E2 = "S1E2"
    S1E3 = "S1E3"
    N1E1 = "N1E1"
    N1E2 = "N1E2"
    N2E1 = "N2E1"
    N2E2 = "N2E2"
    N2_A2B1 = "N2-A2B1"
    UNKNOWN = "UNKNOWN"

    @property
    def loop_type(self) -> str:
        """The coarse type: S1, N1 or N2 (Figure 13)."""
        if self.value.startswith("S1"):
            return "S1"
        if self.value.startswith("N1"):
            return "N1"
        if self.value.startswith("N2"):
            return "N2"
        return "UNKNOWN"


@dataclass(frozen=True)
class OffTransition:
    """One classified 5G-OFF transition.

    ``problem_cell`` is the cell the cause analysis pivots on (section
    5.3): the bad-apple SCell for S1E1/S1E2, the modification target for
    S1E3, the handover/redirect target for N2E1/N1E2, the failing PCell
    for N1E1, and the PSCell whose SCG failed for N2E2.
    """

    time_s: float
    subtype: LoopSubtype
    problem_cell: "CellIdentity | None" = None


def _window(records: list[Record], t_off: float) -> list[Record]:
    return [record for record in records
            if t_off - _TRIGGER_WINDOW_BEFORE_S <= record.time_s
            <= t_off + _TRIGGER_WINDOW_AFTER_S]


def _on_cellset_before(intervals: list[CellSetInterval],
                       t_off: float) -> CellSet | None:
    """The serving cell set that was active just before the OFF transition."""
    best: CellSet | None = None
    for interval in intervals:
        if interval.cellset.five_g_on and interval.start_s < t_off + 1e-6 \
                and interval.end_s <= t_off + 1e-6:
            best = interval.cellset
    return best


def _classify_sa_exception(records: list[Record],
                           intervals: list[CellSetInterval],
                           t_off: float) -> tuple[LoopSubtype,
                                                  CellIdentity | None]:
    """Split an MM-DEREGISTERED exception into S1E1 / S1E2 / S1E3."""
    for record in records:
        if isinstance(record, RrcReconfigurationRecord) \
                and t_off - 2.0 <= record.time_s <= t_off + 1e-6 \
                and record.scell_add_mod and record.scell_release_indices:
            return LoopSubtype.S1E3, record.scell_add_mod[0].identity

    cellset = _on_cellset_before(intervals, t_off)
    if cellset is None or cellset.pcell is None:
        return LoopSubtype.UNKNOWN, None
    serving_scells = [cell for cell in cellset.mcg_scells if cell.rat is Rat.NR]
    if not serving_scells:
        return LoopSubtype.UNKNOWN, None

    recent_reports = [record for record in records
                      if isinstance(record, MeasurementReportRecord)
                      and t_off - _REPORT_LOOKBACK_S <= record.time_s <= t_off]
    if recent_reports:
        for scell in serving_scells:
            seen = any(report.measurement_of(scell) is not None
                       for report in recent_reports)
            if not seen:
                return LoopSubtype.S1E1, scell
        poor_votes = 0
        worst_scell = None
        for report in recent_reports:
            for scell in serving_scells:
                measurement = report.measurement_of(scell)
                if measurement is not None and measurement.rsrq_db <= _POOR_RSRQ_DB:
                    poor_votes += 1
                    worst_scell = scell
                    break
        if poor_votes >= max(1, len(recent_reports) // 2):
            return LoopSubtype.S1E2, worst_scell
    return LoopSubtype.UNKNOWN, None


def classify_off_transition_cell(records: list[Record],
                                 intervals: list[CellSetInterval],
                                 t_off: float,
                                 t_off_end: float | None = None,
                                 ) -> tuple[LoopSubtype, CellIdentity | None]:
    """Classify the trigger of one 5G-OFF transition.

    ``t_off_end`` is when 5G next turned ON (or the end of trace).  An N1
    loop loses the 4G connection *somewhere within* the OFF period —
    e.g. OP_A's blind redirect to a weak twin fails a second or two
    after the SCG-releasing handover that started the OFF — so the
    reestablishment search spans the whole period, while the other
    triggers are looked up right around the transition itself.
    """
    window = _window(records, t_off)

    for record in window:
        if isinstance(record, ScgFailureRecord):
            return LoopSubtype.N2E2, _last_scg_pscell(records, t_off)
    period_end = t_off_end if t_off_end is not None \
        else t_off + _TRIGGER_WINDOW_AFTER_S
    for record in records:
        if not isinstance(record, RrcReestablishmentRequestRecord):
            continue
        if t_off - _TRIGGER_WINDOW_BEFORE_S <= record.time_s <= period_end:
            if record.cause == "handoverFailure":
                return LoopSubtype.N1E2, record.cell
            return LoopSubtype.N1E1, record.cell
    for record in window:
        if isinstance(record, MmStateRecord) and record.state == "DEREGISTERED":
            return _classify_sa_exception(records, intervals, t_off)
    for record in window:
        if isinstance(record, RrcReconfigurationRecord) and record.is_handover \
                and record.release_scg:
            return LoopSubtype.N2E1, record.handover_target
    for record in window:
        if isinstance(record, RrcReconfigurationRecord) and record.release_scg \
                and not record.is_handover:
            return LoopSubtype.N2_A2B1, _last_scg_pscell(records, t_off)
    return LoopSubtype.UNKNOWN, None


def _last_scg_pscell(records: list[Record], t_off: float) -> CellIdentity | None:
    """The PSCell of the most recent SCG configuration before an OFF."""
    last = None
    for record in records:
        if record.time_s > t_off + _TRIGGER_WINDOW_AFTER_S:
            break
        if isinstance(record, RrcReconfigurationRecord) \
                and record.scg_pscell is not None:
            last = record.scg_pscell
    return last


def classify_off_transition(records: list[Record],
                            intervals: list[CellSetInterval],
                            t_off: float,
                            t_off_end: float | None = None) -> LoopSubtype:
    """Classify the trigger of one 5G-OFF transition (sub-type only)."""
    subtype, _cell = classify_off_transition_cell(records, intervals, t_off,
                                                  t_off_end)
    return subtype


def off_transition_times(intervals: list[CellSetInterval]) -> list[float]:
    """Times at which 5G turned OFF (excluding an OFF start of trace)."""
    return [start for start, _end in off_periods(intervals)]


def off_periods(intervals: list[CellSetInterval]) -> list[tuple[float, float]]:
    """(start, end) of every OFF period that follows an ON period."""
    segments = five_g_timeline(intervals)
    periods = []
    for index in range(1, len(segments)):
        if not segments[index][0] and segments[index - 1][0]:
            periods.append((segments[index][1], segments[index][2]))
    return periods


def classify_loop(records: list[Record],
                  intervals: list[CellSetInterval]) -> tuple[LoopSubtype,
                                                             list[OffTransition]]:
    """Classify every OFF transition and majority-vote the loop sub-type."""
    transitions = []
    for start, end in off_periods(intervals):
        subtype, problem_cell = classify_off_transition_cell(
            records, intervals, start, end)
        transitions.append(OffTransition(start, subtype, problem_cell))
    votes = Counter(transition.subtype for transition in transitions
                    if transition.subtype is not LoopSubtype.UNKNOWN)
    if not votes:
        return LoopSubtype.UNKNOWN, transitions
    majority = votes.most_common(1)[0][0]
    return majority, transitions
