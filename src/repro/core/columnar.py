"""Columnar data plane for the analysis hot path.

``analyze_trace`` spends most of its time re-scanning Python record
lists: every OFF transition re-filters the whole trace for its trigger
window, the throughput merge advances a Python cursor sample by sample,
and the measurement-stat pass re-walks the interval list.  This module
builds numpy-backed tables **once per trace** — per-kind record time
arrays (:class:`RecordColumns`) and interval start/end/5G-on/interned
cell-set-id arrays (:class:`IntervalColumns`) — and reimplements the
per-record merges as ``np.searchsorted`` lookups over them.

The columnar functions are *bit-identical* to the per-record
implementations they accelerate (``repro.core.metrics``,
``repro.core.classify``, and the stat collectors in
``repro.core.pipeline``), which stay in the tree as test oracles; the
property tests in ``tests/test_core_columnar.py`` and the benchmark
gate in ``benchmarks/test_analysis_hotpath.py`` enforce the
equivalence.  Everything stays behind the existing dataclass schemas:
callers still receive ``CycleMetrics`` / ``RunPerformance`` /
``OffTransition`` objects, only the arithmetic underneath is batched.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.cells.cell import CellIdentity, Rat
from repro.core.cellset import CellSet, CellSetInterval
from repro.core.classify import (
    _POOR_RSRQ_DB,
    _REPORT_LOOKBACK_S,
    _TRIGGER_WINDOW_AFTER_S,
    _TRIGGER_WINDOW_BEFORE_S,
    LoopSubtype,
    OffTransition,
)
from repro.core.metrics import CycleMetrics, RunPerformance
from repro.traces.log import SignalingTrace
from repro.traces.records import (
    MeasurementReportRecord,
    MmStateRecord,
    Record,
    RrcReconfigurationRecord,
    RrcReestablishmentRequestRecord,
    ScgFailureRecord,
    ThroughputSampleRecord,
)

__all__ = [
    "IntervalColumns",
    "RecordColumns",
    "RecordColumnsBuilder",
    "classify_loop_columnar",
    "loop_cycles_columnar",
    "run_performance_columnar",
    "scg_measurement_delays_columnar",
]

_EMPTY_F64 = np.empty(0, dtype=np.float64)
_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_BOOL = np.empty(0, dtype=bool)


def _median(values: list[float]) -> float:
    """``float(np.median(values))`` without the per-call numpy overhead.

    Bit-identical: ``np.median`` selects the middle element for odd
    sizes and averages the two middle elements (``(a + b) / 2`` in
    float64) for even sizes — the per-cycle segments here hold a
    handful of samples each, where ``sorted`` beats ``np.partition``'s
    fixed cost by an order of magnitude.
    """
    ordered = sorted(values)
    n = len(ordered)
    mid = n >> 1
    if n & 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _as_f64(values: list[float]) -> np.ndarray:
    return np.asarray(values, dtype=np.float64) if values else _EMPTY_F64


def _as_i64(values: list[int]) -> np.ndarray:
    return np.asarray(values, dtype=np.int64) if values else _EMPTY_I64


@dataclass
class RecordColumns:
    """Per-kind record tables of one trace, built in a single pass.

    All time arrays are float64 and non-decreasing (traces guarantee
    record order); the parallel object lists keep the original record
    order so "first/last match in a window" lookups resolve ties the
    same way a forward scan over the record list does.
    """

    #: The RRC capture proper (throughput samples excluded), in order.
    signaling: list[Record]
    throughput_t: np.ndarray
    throughput_mbps: np.ndarray
    #: Measurement reports + their times; NR-bearing report times feed
    #: the SCG recovery-delay match.
    meas_reports: list[MeasurementReportRecord]
    meas_t: np.ndarray
    nr_report_t: np.ndarray
    scg_failure_t: np.ndarray
    reest: list[RrcReestablishmentRequestRecord]
    reest_t: np.ndarray
    #: MM5G DEREGISTERED lines: times + their indices into ``signaling``
    #: (the SCell-outcome lookahead is index-ordered).
    dereg_t: np.ndarray
    dereg_sig_index: np.ndarray
    #: Reconfigurations carrying an SCG config (for ``_last_scg_pscell``).
    scg_config_t: np.ndarray
    scg_config_pscells: list[CellIdentity]
    #: Handover reconfigurations that also release the SCG (N2E1).
    ho_release_t: np.ndarray
    ho_release_targets: list[CellIdentity | None]
    #: Non-handover SCG releases (the legacy A2-B1 trigger).
    scg_release_t: np.ndarray
    #: Reconfigurations with both an add/mod list and release indices —
    #: the broad S1E3 predicate; the SCell-outcome pass filters further.
    scellmod: list[RrcReconfigurationRecord]
    scellmod_t: np.ndarray
    scellmod_sig_index: np.ndarray

    @staticmethod
    def from_trace(trace: SignalingTrace) -> "RecordColumns":
        builder = RecordColumnsBuilder()
        for record in trace.records:
            builder.push(record)
        return builder.build()


class RecordColumnsBuilder:
    """Push-based accumulator behind :meth:`RecordColumns.from_trace`.

    The per-kind dispatch used to live inline in ``from_trace``; it is
    a class so the incremental analyzer (:mod:`repro.core.incremental`)
    can feed records one at a time and :meth:`build` the identical
    column set at finalize — the batch path goes through the same
    ``push`` calls, so the two cannot drift.
    """

    def __init__(self) -> None:
        self.signaling: list[Record] = []
        self.throughput_t: list[float] = []
        self.throughput_mbps: list[float] = []
        self.meas_reports: list[MeasurementReportRecord] = []
        self.meas_t: list[float] = []
        self.nr_report_t: list[float] = []
        self.scg_failure_t: list[float] = []
        self.reest: list[RrcReestablishmentRequestRecord] = []
        self.reest_t: list[float] = []
        self.dereg_t: list[float] = []
        self.dereg_sig_index: list[int] = []
        self.scg_config_t: list[float] = []
        self.scg_config_pscells: list[CellIdentity] = []
        self.ho_release_t: list[float] = []
        self.ho_release_targets: list[CellIdentity | None] = []
        self.scg_release_t: list[float] = []
        self.scellmod: list[RrcReconfigurationRecord] = []
        self.scellmod_t: list[float] = []
        self.scellmod_sig_index: list[int] = []

    def push(self, record: Record) -> None:
        if isinstance(record, ThroughputSampleRecord):
            self.throughput_t.append(record.time_s)
            self.throughput_mbps.append(record.mbps)
            return
        sig_index = len(self.signaling)
        self.signaling.append(record)
        if isinstance(record, MeasurementReportRecord):
            self.meas_reports.append(record)
            self.meas_t.append(record.time_s)
            if any(measurement.identity.rat is Rat.NR
                   for measurement in record.measurements):
                self.nr_report_t.append(record.time_s)
        elif isinstance(record, ScgFailureRecord):
            self.scg_failure_t.append(record.time_s)
        elif isinstance(record, RrcReestablishmentRequestRecord):
            self.reest.append(record)
            self.reest_t.append(record.time_s)
        elif isinstance(record, MmStateRecord):
            if record.state == "DEREGISTERED":
                self.dereg_t.append(record.time_s)
                self.dereg_sig_index.append(sig_index)
        elif isinstance(record, RrcReconfigurationRecord):
            if record.scg_pscell is not None:
                self.scg_config_t.append(record.time_s)
                self.scg_config_pscells.append(record.scg_pscell)
            if record.release_scg:
                if record.is_handover:
                    self.ho_release_t.append(record.time_s)
                    self.ho_release_targets.append(record.handover_target)
                else:
                    self.scg_release_t.append(record.time_s)
            if record.scell_add_mod and record.scell_release_indices:
                self.scellmod.append(record)
                self.scellmod_t.append(record.time_s)
                self.scellmod_sig_index.append(sig_index)

    def build(self) -> RecordColumns:
        return RecordColumns(
            signaling=self.signaling,
            throughput_t=_as_f64(self.throughput_t),
            throughput_mbps=_as_f64(self.throughput_mbps),
            meas_reports=self.meas_reports,
            meas_t=_as_f64(self.meas_t),
            nr_report_t=_as_f64(self.nr_report_t),
            scg_failure_t=_as_f64(self.scg_failure_t),
            reest=self.reest,
            reest_t=_as_f64(self.reest_t),
            dereg_t=_as_f64(self.dereg_t),
            dereg_sig_index=_as_i64(self.dereg_sig_index),
            scg_config_t=_as_f64(self.scg_config_t),
            scg_config_pscells=self.scg_config_pscells,
            ho_release_t=_as_f64(self.ho_release_t),
            ho_release_targets=self.ho_release_targets,
            scg_release_t=_as_f64(self.scg_release_t),
            scellmod=self.scellmod,
            scellmod_t=_as_f64(self.scellmod_t),
            scellmod_sig_index=_as_i64(self.scellmod_sig_index),
        )


@dataclass
class IntervalColumns:
    """The cell-set interval sequence as parallel arrays.

    Cell sets are interned: ``cellsets`` holds each distinct set once
    (first-appearance order) and ``cellset_id`` maps intervals into it.
    The collapsed 5G timeline (``seg_*``, the exact segments
    :func:`repro.core.cellset.five_g_timeline` produces) and the
    ON-interval projection (``on_*``, for the classifier's
    serving-set-before-OFF lookup) are precomputed here because three
    different stages reuse them.
    """

    start: np.ndarray
    end: np.ndarray
    on: np.ndarray
    cellset_id: np.ndarray
    cellsets: list[CellSet]
    seg_on: np.ndarray
    seg_start: np.ndarray
    seg_end: np.ndarray
    on_start: np.ndarray
    on_end: np.ndarray
    on_cellset_id: np.ndarray

    @staticmethod
    def from_intervals(intervals: list[CellSetInterval]) -> "IntervalColumns":
        n = len(intervals)
        cellsets: list[CellSet] = []
        table: dict[CellSet, int] = {}
        ids = np.empty(n, dtype=np.int64)
        start = np.empty(n, dtype=np.float64)
        end = np.empty(n, dtype=np.float64)
        for index, interval in enumerate(intervals):
            cellset_id = table.get(interval.cellset)
            if cellset_id is None:
                cellset_id = len(cellsets)
                table[interval.cellset] = cellset_id
                cellsets.append(interval.cellset)
            ids[index] = cellset_id
            start[index] = interval.start_s
            end[index] = interval.end_s
        unique_on = np.fromiter((cellset.five_g_on for cellset in cellsets),
                                dtype=bool, count=len(cellsets)) \
            if cellsets else _EMPTY_BOOL
        on = unique_on[ids] if n else _EMPTY_BOOL

        if n:
            # Same-state intervals only merge into one segment when
            # contiguous — mirrors the five_g_timeline gap rule (a gap
            # between intervals must survive as a segment boundary).
            change = np.flatnonzero((on[1:] != on[:-1])
                                    | (start[1:] != end[:-1]))
            seg_first = np.concatenate(([0], change + 1))
            seg_last = np.concatenate((change, [n - 1]))
            seg_on = on[seg_first]
            seg_start = start[seg_first]
            seg_end = end[seg_last]
        else:
            seg_on, seg_start, seg_end = _EMPTY_BOOL, _EMPTY_F64, _EMPTY_F64

        return IntervalColumns(
            start=start, end=end, on=on, cellset_id=ids, cellsets=cellsets,
            seg_on=seg_on, seg_start=seg_start, seg_end=seg_end,
            on_start=start[on], on_end=end[on], on_cellset_id=ids[on],
        )


# ----------------------------------------------------------------------
# Metrics (oracles: repro.core.metrics)
# ----------------------------------------------------------------------


def run_performance_columnar(icolumns: IntervalColumns,
                             rcolumns: RecordColumns) -> RunPerformance:
    """Columnar :func:`repro.core.metrics.run_performance`.

    The Python cursor merge becomes one ``searchsorted`` of the sample
    times into the segment ends: for an in-range sample the cursor rule
    "first segment with ``t < end``" is exactly
    ``searchsorted(seg_end, t, side='right')``, and samples before the
    first / past the last segment split off as contiguous prefix/suffix
    blocks because both series are time-ordered.
    """
    performance = RunPerformance()
    seg_on, seg_end = icolumns.seg_on, icolumns.seg_end
    t = rcolumns.throughput_t
    if seg_on.size == 0 or t.size == 0:
        return performance
    mbps = rcolumns.throughput_mbps
    first_start = icolumns.seg_start[0]
    last_end = seg_end[-1]
    lo = int(np.searchsorted(t, first_start, side="left"))
    hi = int(np.searchsorted(t, last_end, side="left"))
    in_mbps = mbps[lo:hi]
    idx = np.searchsorted(seg_end, t[lo:hi], side="right")
    on_mask = seg_on[idx]
    performance.on_speed_samples = in_mbps[on_mask].tolist()
    performance.off_speed_samples = in_mbps[~on_mask].tolist()
    tail = mbps[hi:]
    if tail.size:
        # Samples past the last segment extrapolate its state.
        bucket = performance.on_speed_samples if seg_on[-1] \
            else performance.off_speed_samples
        bucket.extend(tail.tolist())
    # Per-cycle loss over each consecutive (ON, OFF) segment pair; idx
    # is non-decreasing, so each segment's samples are one slice.
    pairs = np.flatnonzero(seg_on[:-1] & ~seg_on[1:])
    if pairs.size:
        bounds = np.searchsorted(idx, np.arange(seg_on.size + 1), side="left")
        samples = in_mbps.tolist()
        for index in pairs:
            on_speeds = samples[bounds[index]:bounds[index + 1]]
            off_speeds = samples[bounds[index + 1]:bounds[index + 2]]
            if on_speeds and off_speeds:
                performance.cycle_speed_losses.append(
                    _median(on_speeds) - _median(off_speeds))
    return performance


def loop_cycles_columnar(icolumns: IntervalColumns,
                         window: tuple[float, float] | None = None,
                         ) -> list[CycleMetrics]:
    """Columnar :func:`repro.core.metrics.loop_cycles` (vectorised clip)."""
    seg_on = icolumns.seg_on
    seg_start = icolumns.seg_start
    seg_end = icolumns.seg_end
    if window is not None:
        start_w, end_w = window
        seg_start = np.maximum(seg_start, start_w)
        seg_end = np.minimum(seg_end, end_w)
        keep = seg_end > seg_start
        seg_on, seg_start, seg_end = seg_on[keep], seg_start[keep], seg_end[keep]
    return [CycleMetrics(on_s=float(seg_end[i] - seg_start[i]),
                         off_s=float(seg_end[i + 1] - seg_start[i + 1]))
            for i in np.flatnonzero(seg_on[:-1] & ~seg_on[1:])]


def scg_measurement_delays_columnar(rcolumns: RecordColumns) -> list[float]:
    """Columnar :func:`repro.core.metrics.scg_measurement_delays`."""
    failure_t = rcolumns.scg_failure_t
    report_t = rcolumns.nr_report_t
    if failure_t.size == 0:
        return []
    positions = np.searchsorted(report_t, failure_t, side="right")
    valid = positions < report_t.size
    return (report_t[positions[valid]] - failure_t[valid]).tolist()


# ----------------------------------------------------------------------
# Classification (oracle: repro.core.classify)
# ----------------------------------------------------------------------


def _window_count(times: np.ndarray, lo: np.ndarray,
                  hi: np.ndarray) -> np.ndarray:
    """How many of ``times`` fall in each inclusive ``[lo, hi]`` window."""
    return (np.searchsorted(times, hi, side="right")
            - np.searchsorted(times, lo, side="left"))


def _on_cellset_before(icolumns: IntervalColumns,
                       t_off: float) -> CellSet | None:
    """Columnar ``classify._on_cellset_before``: the last ON interval
    with ``start < t_off + eps`` and ``end <= t_off + eps``."""
    cutoff = t_off + 1e-6
    index = int(np.searchsorted(icolumns.on_end, cutoff, side="right")) - 1
    while index >= 0 and not (icolumns.on_start[index] < cutoff):
        index -= 1
    if index < 0:
        return None
    return icolumns.cellsets[icolumns.on_cellset_id[index]]


def _classify_sa_exception(rcolumns: RecordColumns,
                           icolumns: IntervalColumns,
                           t_off: float) -> tuple[LoopSubtype,
                                                  CellIdentity | None]:
    """Columnar ``classify._classify_sa_exception`` (S1E1/S1E2/S1E3)."""
    mod_index = int(np.searchsorted(rcolumns.scellmod_t, t_off - 2.0,
                                    side="left"))
    if mod_index < rcolumns.scellmod_t.size \
            and rcolumns.scellmod_t[mod_index] <= t_off + 1e-6:
        return (LoopSubtype.S1E3,
                rcolumns.scellmod[mod_index].scell_add_mod[0].identity)

    cellset = _on_cellset_before(icolumns, t_off)
    if cellset is None or cellset.pcell is None:
        return LoopSubtype.UNKNOWN, None
    serving_scells = [cell for cell in cellset.mcg_scells if cell.rat is Rat.NR]
    if not serving_scells:
        return LoopSubtype.UNKNOWN, None

    report_lo = int(np.searchsorted(rcolumns.meas_t,
                                    t_off - _REPORT_LOOKBACK_S, side="left"))
    report_hi = int(np.searchsorted(rcolumns.meas_t, t_off, side="right"))
    recent_reports = rcolumns.meas_reports[report_lo:report_hi]
    if recent_reports:
        for scell in serving_scells:
            seen = any(report.measurement_of(scell) is not None
                       for report in recent_reports)
            if not seen:
                return LoopSubtype.S1E1, scell
        poor_votes = 0
        worst_scell = None
        for report in recent_reports:
            for scell in serving_scells:
                measurement = report.measurement_of(scell)
                if measurement is not None and measurement.rsrq_db <= _POOR_RSRQ_DB:
                    poor_votes += 1
                    worst_scell = scell
                    break
        if poor_votes >= max(1, len(recent_reports) // 2):
            return LoopSubtype.S1E2, worst_scell
    return LoopSubtype.UNKNOWN, None


def classify_loop_columnar(rcolumns: RecordColumns,
                           icolumns: IntervalColumns,
                           ) -> tuple[LoopSubtype, list[OffTransition]]:
    """Columnar :func:`repro.core.classify.classify_loop`.

    Every trigger-window membership test the per-record classifier
    performs by re-filtering the record list becomes a pair of
    ``searchsorted`` bounds, batched across *all* OFF transitions at
    once; the per-transition loop then only dispatches on the
    precomputed bounds (plus the small per-report S1 analysis).  Branch
    order, window inclusivity and tie-breaking all match the oracle.
    """
    seg_on = icolumns.seg_on
    off_indices = np.flatnonzero(seg_on[:-1] & ~seg_on[1:]) + 1
    if off_indices.size == 0:
        return LoopSubtype.UNKNOWN, []
    t_offs = icolumns.seg_start[off_indices]
    t_ends = icolumns.seg_end[off_indices]
    window_lo = t_offs - _TRIGGER_WINDOW_BEFORE_S
    window_hi = t_offs + _TRIGGER_WINDOW_AFTER_S

    has_scg_failure = _window_count(rcolumns.scg_failure_t,
                                    window_lo, window_hi) > 0
    # Reestablishment search spans the whole OFF period (N1 loops lose
    # the 4G leg somewhere within it), not just the trigger window.
    reest_first = np.searchsorted(rcolumns.reest_t, window_lo, side="left")
    has_dereg = _window_count(rcolumns.dereg_t, window_lo, window_hi) > 0
    ho_first = np.searchsorted(rcolumns.ho_release_t, window_lo, side="left")
    has_ho_release = _window_count(rcolumns.ho_release_t,
                                   window_lo, window_hi) > 0
    has_scg_release = _window_count(rcolumns.scg_release_t,
                                    window_lo, window_hi) > 0
    # _last_scg_pscell: the latest SCG config at or before t_off + after.
    pscell_pos = np.searchsorted(rcolumns.scg_config_t, window_hi,
                                 side="right") - 1

    transitions: list[OffTransition] = []
    for k in range(off_indices.size):
        t_off = float(t_offs[k])
        subtype = LoopSubtype.UNKNOWN
        problem_cell: CellIdentity | None = None
        reest_index = int(reest_first[k])
        if has_scg_failure[k]:
            subtype = LoopSubtype.N2E2
            if pscell_pos[k] >= 0:
                problem_cell = rcolumns.scg_config_pscells[pscell_pos[k]]
        elif reest_index < rcolumns.reest_t.size \
                and rcolumns.reest_t[reest_index] <= float(t_ends[k]):
            request = rcolumns.reest[reest_index]
            subtype = LoopSubtype.N1E2 if request.cause == "handoverFailure" \
                else LoopSubtype.N1E1
            problem_cell = request.cell
        elif has_dereg[k]:
            subtype, problem_cell = _classify_sa_exception(
                rcolumns, icolumns, t_off)
        elif has_ho_release[k]:
            problem_cell = rcolumns.ho_release_targets[int(ho_first[k])]
            subtype = LoopSubtype.N2E1
        elif has_scg_release[k]:
            subtype = LoopSubtype.N2_A2B1
            if pscell_pos[k] >= 0:
                problem_cell = rcolumns.scg_config_pscells[pscell_pos[k]]
        transitions.append(OffTransition(t_off, subtype, problem_cell))

    votes = Counter(transition.subtype for transition in transitions
                    if transition.subtype is not LoopSubtype.UNKNOWN)
    if not votes:
        return LoopSubtype.UNKNOWN, transitions
    return votes.most_common(1)[0][0], transitions
