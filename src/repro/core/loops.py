"""5G ON-OFF loop detection (Figure 4).

A loop exists when a subsequence of serving cell sets containing both a
5G-ON and a 5G-OFF set repeats twice or more.  The loop is *persistent*
if the run ends inside the loop (the final cell set belongs to the loop
subsequence) and *semi-persistent* if the sequence later leaves the
loop.

Detection scans the deduplicated cell set sequence for the earliest,
shortest periodic block; the reported block is rotated to the canonical
phase (starting at a 5G-ON set that follows a 5G-OFF one), matching the
paper's "starts with 5G ON, ends with 5G OFF" presentation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.cellset import CellSet, CellSetInterval


class LoopKind(enum.Enum):
    """Outcome of loop detection for one run (Figure 4's I / II-P / II-SP)."""

    NO_LOOP = "I"
    PERSISTENT = "II-P"
    SEMI_PERSISTENT = "II-SP"

    @property
    def is_loop(self) -> bool:
        return self is not LoopKind.NO_LOOP


@dataclass(frozen=True)
class LoopDetection:
    """The result of loop detection on one cell set sequence.

    Attributes:
        kind: no-loop / persistent / semi-persistent.
        start_index: index (into the deduplicated sequence) where the
            periodic region begins.
        period: length of the repeating block.
        repetitions: how many complete times the block repeats.
        block: the canonical (ON-first) rotation of the repeating block.
    """

    kind: LoopKind
    start_index: int = -1
    period: int = 0
    repetitions: int = 0
    block: tuple[CellSet, ...] = ()

    @property
    def is_loop(self) -> bool:
        return self.kind.is_loop


def dedup_sequence(intervals: list[CellSetInterval]) -> list[CellSet]:
    """The cell set sequence with consecutive duplicates merged."""
    sequence: list[CellSet] = []
    for interval in intervals:
        if not sequence or sequence[-1] != interval.cellset:
            sequence.append(interval.cellset)
    return sequence


def _block_has_both_states(block: list[CellSet]) -> bool:
    has_on = any(cellset.five_g_on for cellset in block)
    has_off = any(not cellset.five_g_on for cellset in block)
    return has_on and has_off


def _canonical_rotation(block: list[CellSet]) -> tuple[CellSet, ...]:
    """Rotate the block to start at an ON set preceded (cyclically) by OFF."""
    n = len(block)
    for shift in range(n):
        first = block[shift]
        previous = block[(shift - 1) % n]
        if first.five_g_on and not previous.five_g_on:
            return tuple(block[shift:] + block[:shift])
    return tuple(block)


def _count_repetitions(sequence: list[CellSet], start: int, period: int) -> int:
    """Complete repetitions of sequence[start:start+period] from ``start``."""
    block = sequence[start:start + period]
    repetitions = 0
    position = start
    while position + period <= len(sequence) and \
            sequence[position:position + period] == block:
        repetitions += 1
        position += period
    return repetitions


def detect_loop(intervals: list[CellSetInterval],
                min_repetitions: int = 2) -> LoopDetection:
    """Detect a 5G ON-OFF loop in a cell set interval sequence.

    Scans for the earliest start index, then the shortest period, whose
    block repeats at least ``min_repetitions`` times and visits both 5G
    states.  Persistence follows the paper's rule: the run's final cell
    set must belong to the loop subsequence.
    """
    sequence = dedup_sequence(intervals)
    n = len(sequence)
    for start in range(n):
        max_period = (n - start) // min_repetitions
        for period in range(2, max_period + 1):
            block = sequence[start:start + period]
            if not _block_has_both_states(block):
                continue
            repetitions = _count_repetitions(sequence, start, period)
            if repetitions < min_repetitions:
                continue
            block_set = set(block)
            persistent = sequence[-1] in block_set
            kind = LoopKind.PERSISTENT if persistent else LoopKind.SEMI_PERSISTENT
            return LoopDetection(kind=kind, start_index=start, period=period,
                                 repetitions=repetitions,
                                 block=_canonical_rotation(block))
    return LoopDetection(kind=LoopKind.NO_LOOP)
