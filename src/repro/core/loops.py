"""5G ON-OFF loop detection (Figure 4).

A loop exists when a subsequence of serving cell sets containing both a
5G-ON and a 5G-OFF set repeats twice or more.  The loop is *persistent*
if the run ends inside the periodic region — the complete repetitions,
plus any partial-block tail that is a prefix of the block, extend to
the very end of the deduplicated sequence — and *semi-persistent* if
the sequence later leaves the loop.

Detection scans the deduplicated cell set sequence for the earliest,
shortest periodic block; the reported block is rotated to the canonical
phase (starting at a 5G-ON set that follows a 5G-OFF one), matching the
paper's "starts with 5G ON, ends with 5G OFF" presentation.

The scan is built for campaign-scale sequences: cell sets are interned
to small integers once per run, and each candidate start is tested with
a single Z-array (longest-common-prefix) pass over its suffix, so every
(start, period) pair costs O(1) after O(n) preparation per start.
Candidate starts whose cell set never recurs at a feasible period are
skipped outright via per-symbol occurrence lists, which makes the scan
near-linear on real traces (the naive slice-comparing scan is
O(n^3)-O(n^4) on the same input).
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from dataclasses import dataclass

from repro.core.cellset import CellSet, CellSetInterval


class LoopKind(enum.Enum):
    """Outcome of loop detection for one run (Figure 4's I / II-P / II-SP)."""

    NO_LOOP = "I"
    PERSISTENT = "II-P"
    SEMI_PERSISTENT = "II-SP"

    @property
    def is_loop(self) -> bool:
        return self is not LoopKind.NO_LOOP


@dataclass(frozen=True)
class LoopDetection:
    """The result of loop detection on one cell set sequence.

    Attributes:
        kind: no-loop / persistent / semi-persistent.
        start_index: index (into the deduplicated sequence) where the
            periodic region begins.
        period: length of the repeating block.
        repetitions: how many complete times the block repeats.
        block: the canonical (ON-first) rotation of the repeating block.
    """

    kind: LoopKind
    start_index: int = -1
    period: int = 0
    repetitions: int = 0
    block: tuple[CellSet, ...] = ()

    @property
    def is_loop(self) -> bool:
        return self.kind.is_loop


class SpanDedup:
    """Span-preserving dedup of a cell-set interval sequence.

    Consecutive equal cell sets collapse into one *element* whose time
    span covers all merged intervals.  This is the one implementation
    shared by :func:`dedup_sequence`, :func:`loop_window` and the
    incremental detector (:mod:`repro.core.incremental`) — it used to
    live as two divergence-prone inline copies.

    Elements are stored as parallel lists (``cellsets``/``starts``/
    ``ends``).  Long-lived streams may :meth:`evict` old elements;
    ``base`` is the absolute index of the first retained element, so
    absolute indices (what :class:`LoopDetection.start_index` uses)
    stay stable across eviction.  Batch callers never evict and can
    index the lists directly.
    """

    __slots__ = ("cellsets", "starts", "ends", "base")

    def __init__(self) -> None:
        self.cellsets: list[CellSet] = []
        self.starts: list[float] = []
        self.ends: list[float] = []
        self.base = 0

    def __len__(self) -> int:
        """The absolute dedup-sequence length (including evicted)."""
        return self.base + len(self.cellsets)

    def push(self, cellset: CellSet, start_s: float, end_s: float) -> bool:
        """Add one interval; True when a new element was appended
        (False: it merged into the last element's span)."""
        if self.cellsets and self.cellsets[-1] == cellset:
            self.ends[-1] = end_s
            return False
        self.cellsets.append(cellset)
        self.starts.append(start_s)
        self.ends.append(end_s)
        return True

    def extend(self, intervals: list[CellSetInterval]) -> None:
        for interval in intervals:
            self.push(interval.cellset, interval.start_s, interval.end_s)

    def evict(self, keep_last: int) -> None:
        """Drop all but the last ``keep_last`` elements (ring bound)."""
        excess = len(self.cellsets) - keep_last
        if excess > 0:
            del self.cellsets[:excess]
            del self.starts[:excess]
            del self.ends[:excess]
            self.base += excess


def dedup_sequence(intervals: list[CellSetInterval]) -> list[CellSet]:
    """The cell set sequence with consecutive duplicates merged."""
    dedup = SpanDedup()
    dedup.extend(intervals)
    return dedup.cellsets


def _canonical_rotation(block: list[CellSet]) -> tuple[CellSet, ...]:
    """Rotate the block to start at an ON set preceded (cyclically) by OFF."""
    n = len(block)
    for shift in range(n):
        first = block[shift]
        previous = block[(shift - 1) % n]
        if first.five_g_on and not previous.five_g_on:
            return tuple(block[shift:] + block[:shift])
    return tuple(block)


def _intern(sequence: list[CellSet]) -> tuple[list[int], list[int]]:
    """Map each distinct cell set to a small integer, once per run.

    Returns the interned sequence and a prefix-sum table of 5G-ON flags
    (``on_prefix[i]`` = number of ON sets among the first ``i``
    elements), so any block's state mix is an O(1) lookup.
    """
    codes: dict[CellSet, int] = {}
    flags: dict[CellSet, int] = {}
    interned: list[int] = []
    on_prefix: list[int] = [0]
    for cellset in sequence:
        code = codes.get(cellset)
        if code is None:
            code = len(codes)
            codes[cellset] = code
            flags[cellset] = 1 if cellset.five_g_on else 0
        interned.append(code)
        on_prefix.append(on_prefix[-1] + flags[cellset])
    return interned, on_prefix


def _z_array(seq: list[int]) -> list[int]:
    """Z-array: ``z[i]`` = length of the longest common prefix of
    ``seq`` and ``seq[i:]`` (the classic linear-time scan)."""
    n = len(seq)
    z = [0] * n
    if n:
        z[0] = n
    left = right = 0
    for i in range(1, n):
        k = min(right - i, z[i - left]) if i < right else 0
        while i + k < n and seq[k] == seq[i + k]:
            k += 1
        z[i] = k
        if i + k > right:
            left, right = i, i + k
    return z


def detect_loop(intervals: list[CellSetInterval],
                min_repetitions: int = 2) -> LoopDetection:
    """Detect a 5G ON-OFF loop in a cell set interval sequence.

    Scans for the earliest start index, then the shortest period, whose
    block repeats at least ``min_repetitions`` times and visits both 5G
    states.  Persistence follows the paper's rule: the periodic region
    (complete repetitions plus a partial-block tail that is a prefix of
    the block) must extend to the end of the run.
    """
    sequence = dedup_sequence(intervals)
    n = len(sequence)
    if n < 2 * min_repetitions:
        return LoopDetection(kind=LoopKind.NO_LOOP)
    interned, on_prefix = _intern(sequence)
    # Occurrence lists let us skip starts whose symbol never recurs at a
    # feasible period (a block of period p repeating means the start
    # symbol recurs exactly p positions later).
    occurrences: dict[int, list[int]] = {}
    for index, code in enumerate(interned):
        occurrences.setdefault(code, []).append(index)
    for start in range(n):
        max_period = (n - start) // min_repetitions
        if max_period < 2:
            break
        positions = occurrences[interned[start]]
        next_at = bisect_right(positions, start + 1)
        if next_at >= len(positions) or \
                positions[next_at] - start > max_period:
            continue
        z = _z_array(interned[start:])
        for period in range(2, max_period + 1):
            on_in_block = on_prefix[start + period] - on_prefix[start]
            if on_in_block == 0 or on_in_block == period:
                continue
            lcp = z[period]
            repetitions = 1 + lcp // period
            if repetitions < min_repetitions:
                continue
            # The periodic region spans [start, start + period + lcp);
            # the run is persistent iff it reaches the end of the
            # sequence (complete repetitions + partial-block tail).
            persistent = start + period + lcp == n
            kind = LoopKind.PERSISTENT if persistent \
                else LoopKind.SEMI_PERSISTENT
            block = sequence[start:start + period]
            return LoopDetection(kind=kind, start_index=start, period=period,
                                 repetitions=repetitions,
                                 block=_canonical_rotation(block))
    return LoopDetection(kind=LoopKind.NO_LOOP)


def loop_window(intervals: list[CellSetInterval],
                detection: LoopDetection) -> tuple[float, float] | None:
    """The [start, end) time span of a detection's periodic region.

    ``LoopDetection.start_index`` indexes the *deduplicated* sequence;
    this maps the periodic region — the complete repetitions plus any
    partial-block tail that continues the block — back onto the interval
    timeline, so cycle metrics can be restricted to the loop itself.
    Returns ``None`` when there is no loop or the detection does not fit
    the given intervals.
    """
    if not detection.is_loop:
        return None
    # Aggregate the intervals into deduplicated elements with time spans.
    dedup = SpanDedup()
    dedup.extend(intervals)
    cellsets = dedup.cellsets
    first = detection.start_index
    period = detection.period
    tail_start = first + period * detection.repetitions
    if first < 0 or tail_start > len(cellsets):
        return None
    block = cellsets[first:first + period]
    tail = 0
    while tail < period and tail_start + tail < len(cellsets) and \
            cellsets[tail_start + tail] == block[tail]:
        tail += 1
    last = tail_start + tail - 1
    return dedup.starts[first], dedup.ends[last]
