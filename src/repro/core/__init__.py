"""The paper's analysis contribution.

Given a parsed RRC signaling trace, this package extracts the serving
cell set sequence (Appendix B), detects 5G ON-OFF loops and classifies
them as persistent or semi-persistent (Figure 4), assigns each loop its
sub-type (S1E1..N2E2, Figures 13-15), computes the performance metrics
of sections 4.2-4.3, and fits the section-6 loop-probability model.
"""

from repro.core.cellset import (
    CellSet,
    CellSetInterval,
    extract_cellset_sequence,
    five_g_timeline,
)
from repro.core.loops import LoopDetection, LoopKind, detect_loop, loop_window
from repro.core.classify import LoopSubtype, classify_loop, classify_off_transition
from repro.core.metrics import CycleMetrics, RunPerformance, loop_cycles, run_performance
from repro.core.pipeline import RunAnalysis, analyze_trace
from repro.core.prediction import (
    LocationFeatures,
    S1LoopPredictor,
    fit_s1e3_model,
    logistic_usage,
    s1e3_probability,
)

__all__ = [
    "CellSet",
    "CellSetInterval",
    "CycleMetrics",
    "LocationFeatures",
    "LoopDetection",
    "LoopKind",
    "LoopSubtype",
    "RunAnalysis",
    "RunPerformance",
    "S1LoopPredictor",
    "analyze_trace",
    "classify_loop",
    "classify_off_transition",
    "detect_loop",
    "extract_cellset_sequence",
    "fit_s1e3_model",
    "five_g_timeline",
    "logistic_usage",
    "loop_cycles",
    "loop_window",
    "run_performance",
    "s1e3_probability",
]
