"""Collision-proof derivation of per-run seeds from structured keys.

Seeds all over the campaign layer are derived by hashing a tuple of key
parts (operator, area, location, run index, ...).  A naive
``"|".join(str(p) for p in parts)`` encoding is not injective: any part
containing the delimiter collides with a shifted split — e.g.
``("A1-P1|0",)`` and ``("A1-P1", 0)`` encode to the same string — which
silently reuses run seeds and retry jitter across distinct runs.

:func:`encode_key_parts` therefore escapes the delimiter (and the
escape character) inside each part before joining, making the encoding
injective on the parts' string forms while staying *byte-identical* to
the legacy encoding for parts that contain neither ``|`` nor ``\\`` —
so every seed derived from ordinary operator/area/location names is
unchanged.
"""

from __future__ import annotations

import zlib

__all__ = ["encode_key_parts", "stable_seed"]

#: Joins the escaped parts; escaped inside parts, so splits are unambiguous.
_DELIMITER = "|"
_ESCAPE = "\\"


def encode_key_parts(*parts: object) -> str:
    """Injective string encoding of a key tuple (delimiter-escape based)."""
    return _DELIMITER.join(
        str(part).replace(_ESCAPE, _ESCAPE + _ESCAPE)
                 .replace(_DELIMITER, _ESCAPE + _DELIMITER)
        for part in parts)


def stable_seed(*parts: object) -> int:
    """Deterministic 32-bit seed from a key tuple (collision-proof)."""
    return zlib.crc32(encode_key_parts(*parts).encode("utf-8"))
