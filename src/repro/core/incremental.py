"""Online (record-at-a-time) loop analysis for live device streams.

``analyze_trace`` needs the whole trace before it says anything; a
fleet-scale ingest service (see :mod:`repro.serve`) needs a verdict
*while* the stream is open.  This module provides the streaming core:

* :class:`IncrementalLoopDetector` — an amortized online variant of
  :func:`repro.core.loops.detect_loop`.  It maintains, per candidate
  period ``p``, the length of the maximal sequence suffix that matches
  itself at distance ``p`` (``run[p]`` — the online complement of the
  batch Z-array LCP), and exploits two facts about the batch scan:

  1. *Validity is monotone*: once a ``(start, period)`` pair repeats
     ``min_repetitions`` times it stays valid as the sequence grows
     (the batch LCP never shrinks).
  2. *A pair becomes valid at exactly one length*: ``(s, p)`` first
     satisfies ``lcp >= (min_repetitions - 1) * p`` at dedup length
     ``n = s + min_repetitions * p`` — an LCP grows only while its
     match runs to the end of the sequence, so a pair that is not valid
     the moment its window completes never becomes valid.

  Newly valid pairs at length ``n`` are therefore exactly
  ``{(n - min_repetitions * p, p) : run[p] >= (min_repetitions-1) * p}``,
  and the batch answer — the lexicographically smallest valid
  ``(start, period)`` with a state-mixed block — is a running minimum
  over those enumerations.  The winner's LCP is tracked forward with an
  open/closed flag (open == the periodic region still reaches the end
  of the sequence == the batch persistence rule), so the final
  :class:`LoopDetection` is bit-identical to ``detect_loop``.

  Memory is bounded by the ``horizon`` ring: only the last ``horizon``
  dedup elements are retained (:meth:`SpanDedup.evict`), capping the
  detectable period at ``horizon // min_repetitions``.  Equivalence
  with batch detection is guaranteed whenever the final dedup length
  fits the horizon; the winning block is materialized the moment it is
  elected, so eviction never invalidates an already-reported loop.

* :class:`IncrementalAnalyzer` — feeds records through a streaming
  :class:`~repro.core.cellset.CellSetSequenceBuilder` and the detector.
  Only *stable* intervals are published to the detector: the cell-set
  builder may still reabsorb its most recent interval on a
  same-timestamp state change, so an interval enters the dedup sequence
  once the stream clock has strictly passed its end.  In ``mode="full"``
  the analyzer also accumulates the columnar record tables
  (:class:`~repro.core.columnar.RecordColumnsBuilder`) and
  :meth:`finalize` assembles a :class:`~repro.core.pipeline.RunAnalysis`
  through the same :func:`~repro.core.pipeline.assemble_analysis` the
  batch pipeline uses — field-for-field identical to ``analyze_trace``
  on the same records (Hypothesis-gated in
  ``tests/test_core_incremental.py``).  ``mode="live"`` retains no
  records or intervals at all — per-stream state is the tracker, the
  dedup ring and a handful of counters — and :meth:`finalize` returns a
  compact :class:`StreamVerdict`.

Out-of-order records (live streams deliver them; batch traces cannot)
follow the ``extract_cellset_sequence`` taxonomy: ``on_disorder=
"strict"`` raises :class:`~repro.resilience.errors.OutOfOrderRecordError`,
``"recover"`` clamps the record to the running maximum time and counts
it (``records_out_of_order_total``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.core.cellset import (
    _TIME_TOLERANCE_S,
    CellSet,
    CellSetSequenceBuilder,
)
from repro.core.columnar import IntervalColumns, RecordColumnsBuilder
from repro.core.loops import (
    LoopDetection,
    LoopKind,
    SpanDedup,
    _canonical_rotation,
)
from repro.core.pipeline import RunAnalysis, assemble_analysis
from repro.traces.log import TraceMetadata
from repro.traces.records import Record, ThroughputSampleRecord

__all__ = [
    "IncrementalAnalyzer",
    "IncrementalLoopDetector",
    "StreamVerdict",
]

#: ``on_event`` callback signature: ``callback(name, **fields)``.
EventCallback = Callable[..., None]


class IncrementalLoopDetector:
    """Online :func:`~repro.core.loops.detect_loop` over a dedup stream.

    Feed deduplicated cell-set elements via :meth:`push` (one call per
    interval; consecutive equal cell sets merge into the shared
    :class:`SpanDedup`); read the current verdict via :meth:`detection`.
    Each *new* dedup element costs ``O(min(n, horizon))`` — and dedup
    elements only appear when the serving cell set actually changes, so
    the per-record amortized cost on real streams is far lower.
    """

    def __init__(self, *, min_repetitions: int = 2,
                 horizon: int | None = None) -> None:
        if min_repetitions < 1:
            raise ValueError("min_repetitions must be >= 1")
        if horizon is not None and horizon < 2 * min_repetitions:
            raise ValueError(
                f"horizon {horizon} cannot hold even one "
                f"{min_repetitions}-repetition loop of period 2")
        self.min_repetitions = min_repetitions
        self.horizon = horizon
        self._max_period = horizon // min_repetitions if horizon else None
        self.dedup = SpanDedup()
        # Interning: cell set -> small int code (+ its 5G-ON flag), so
        # all periodicity comparisons are int comparisons.
        self._codes: dict[CellSet, int] = {}
        self._code_on: list[int] = []
        # Interned codes, parallel to dedup.cellsets, as a growable
        # numpy buffer: the per-period run update below is one
        # vectorized compare over the lag window instead of a Python
        # loop (that loop dominated per-record cost at large horizons).
        self._seq = np.empty(256, dtype=np.int64)
        self._seq_len = 0                 # ring-relative element count
        self._on_prefix: list[int] = [0]  # running 5G-ON prefix sums
        self._run = np.zeros(256, dtype=np.int64)  # run[p]: match at lag p
        self._best: tuple[int, int] | None = None   # (start, period)
        self._best_lcp = 0
        self._best_open = False
        self._best_block: tuple[CellSet, ...] = ()
        self._best_window_start = 0.0

    @property
    def best(self) -> tuple[int, int] | None:
        """The current winning ``(start_index, period)`` (None: no loop)."""
        return self._best

    @property
    def best_open(self) -> bool:
        """Whether the winner's periodic region reaches the sequence end."""
        return self._best_open

    @property
    def window_start_s(self) -> float:
        """Start time of the winning periodic region (0.0 before one)."""
        return self._best_window_start

    def __len__(self) -> int:
        """Absolute dedup-sequence length (including evicted elements)."""
        return len(self.dedup)

    def push(self, cellset: CellSet, start_s: float, end_s: float) -> bool:
        """Feed one (final) interval; True when the verdict may have moved."""
        if not self.dedup.push(cellset, start_s, end_s):
            return False
        code = self._codes.get(cellset)
        if code is None:
            code = len(self._codes)
            self._codes[cellset] = code
            self._code_on.append(1 if cellset.five_g_on else 0)
        seq = self._seq
        if self._seq_len == seq.size:
            seq = np.concatenate([seq, np.empty(seq.size, dtype=np.int64)])
            self._seq = seq
        seq[self._seq_len] = code
        self._seq_len += 1
        self._on_prefix.append(self._on_prefix[-1] + self._code_on[code])

        n = len(self.dedup)
        base = self.dedup.base
        rel = n - 1 - base               # new element, ring-relative
        moved = False

        # 1. Extend the winner's LCP while its match still reaches the
        #    end of the sequence (== the batch persistence rule).
        if self._best_open:
            if seq[rel] == seq[rel - self._best[1]]:
                self._best_lcp += 1
            else:
                self._best_open = False
                moved = True

        # 2. Update the per-period suffix self-match lengths — one
        #    vectorized pass: run[p] advances when seq[rel - p] equals
        #    the new code and resets to zero otherwise.
        limit = rel if self._max_period is None \
            else min(rel, self._max_period)
        run = self._run
        if run.size <= limit:
            grown = np.zeros(max(run.size * 2, limit + 1), dtype=np.int64)
            grown[:run.size] = run
            self._run = run = grown
        if limit > 0:
            lagged = seq[rel - limit:rel][::-1]   # lagged[p-1] = seq[rel-p]
            window = run[1:limit + 1]
            window += 1
            window *= lagged == code
        # 3. Enumerate the pairs becoming valid exactly now — (s, p)
        #    with s = n - min_repetitions * p — and fold them into the
        #    running lexicographic minimum.  Only periods whose implied
        #    start can still beat the winner are inspected: s <= bs
        #    requires p >= ceil((n - bs) / min_repetitions), which
        #    shrinks the scan to O(bs / min_repetitions + 1) once any
        #    winner exists (the (s, p) >= best check stays as the exact
        #    filter; the range is purely a prune).
        min_reps = self.min_repetitions
        need = min_reps - 1
        p_hi = n // min_reps
        if self._max_period is not None and p_hi > self._max_period:
            p_hi = self._max_period
        if p_hi > rel:
            p_hi = rel
        best = self._best
        p_lo = 2 if best is None \
            else max(2, -((best[0] - n) // min_reps))
        for p in range(p_lo, p_hi + 1):
            if run[p] < need * p:
                continue
            s = n - min_reps * p
            if best is not None and (s, p) >= best:
                continue
            sp = s - base
            on_in_block = self._on_prefix[sp + p] - self._on_prefix[sp]
            if on_in_block == 0 or on_in_block == p:
                continue
            best = (s, p)
            self._elect(s, p)
            moved = True
        # 4. Ring eviction (amortized: trim half when past 2x horizon).
        if self.horizon is not None and self._seq_len > 2 * self.horizon:
            excess = self._seq_len - self.horizon
            self.dedup.evict(self.horizon)
            seq[:self.horizon] = seq[excess:self._seq_len]
            self._seq_len = self.horizon
            del self._on_prefix[:excess]
        return moved

    def _elect(self, start: int, period: int) -> None:
        """Install a new winner; materialize its block out of the ring."""
        first = start - self.dedup.base
        self._best = (start, period)
        # At election the window [start, start + min_reps * period) just
        # completed, so the LCP is exactly the repeated part and open.
        self._best_lcp = (self.min_repetitions - 1) * period
        self._best_open = True
        self._best_block = _canonical_rotation(
            self.dedup.cellsets[first:first + period])
        self._best_window_start = self.dedup.starts[first]

    def detection(self) -> LoopDetection:
        """The batch-identical :class:`LoopDetection` for the sequence
        seen so far (bit-identical to ``detect_loop`` whenever the dedup
        length fits the horizon)."""
        if self._best is None:
            return LoopDetection(kind=LoopKind.NO_LOOP)
        start, period = self._best
        kind = LoopKind.PERSISTENT if self._best_open \
            else LoopKind.SEMI_PERSISTENT
        return LoopDetection(kind=kind, start_index=start, period=period,
                             repetitions=1 + self._best_lcp // period,
                             block=self._best_block)


@dataclass(frozen=True)
class StreamVerdict:
    """What ``mode="live"`` :meth:`IncrementalAnalyzer.finalize` returns."""

    detection: LoopDetection
    records: int
    dedup_elements: int
    records_out_of_order: int
    duration_s: float

    def to_dict(self) -> dict:
        return {
            "kind": self.detection.kind.value,
            "start_index": self.detection.start_index,
            "period": self.detection.period,
            "repetitions": self.detection.repetitions,
            "records": self.records,
            "dedup_elements": self.dedup_elements,
            "records_out_of_order": self.records_out_of_order,
            "duration_s": self.duration_s,
        }


class IncrementalAnalyzer:
    """Record-at-a-time analysis of one device stream.

    ``mode="full"`` (default) retains what the batch pipeline retains —
    record columns and the interval list — and :meth:`finalize` returns
    a :class:`RunAnalysis` field-for-field identical to
    ``analyze_trace`` on the same records.  ``mode="live"`` keeps only
    bounded state (tracker + dedup ring + counters) and :meth:`finalize`
    returns a :class:`StreamVerdict`; with a ``horizon`` set, per-stream
    memory is O(horizon + distinct cell sets) regardless of stream
    length.

    ``on_event`` (optional) receives live detector transitions:
    ``loop_onset`` (first loop detected), ``loop_update`` (an earlier /
    shorter periodic block took over), ``loop_end`` (the periodic
    region closed — the loop is now at best semi-persistent).  Each
    event carries the stream clock and the current detection shape.
    """

    def __init__(self, metadata: TraceMetadata | None = None, *,
                 min_repetitions: int = 2,
                 horizon: int | None = None,
                 on_disorder: str = "strict",
                 mode: str = "full",
                 on_event: EventCallback | None = None) -> None:
        if mode not in ("full", "live"):
            raise ValueError(f"unknown mode: {mode!r}")
        if on_disorder not in ("strict", "recover"):
            raise ValueError(f"unknown on_disorder mode: {on_disorder!r}")
        self.metadata = metadata if metadata is not None else TraceMetadata()
        self.mode = mode
        self._strict = on_disorder == "strict"
        self._cells = CellSetSequenceBuilder(on_disorder=on_disorder)
        self.detector = IncrementalLoopDetector(
            min_repetitions=min_repetitions, horizon=horizon)
        self._columns = RecordColumnsBuilder() if mode == "full" else None
        self._on_event = on_event
        self._published = 0          # intervals already fed to the detector
        self._last_best: tuple[int, int] | None = None
        self._last_open = False
        self.records_fed = 0
        self.records_out_of_order = 0
        self._first_time = 0.0       # raw time of the first record
        self._end_time = 0.0         # raw time of the latest record
        self._max_time = 0.0         # running max (ordering watermark)
        self._finalized = False

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def _admit(self, record: Record) -> Record:
        """Ordering policy: raise, clamp-and-count, or pass through."""
        time_s = record.time_s
        if self.records_fed and time_s < self._max_time - _TIME_TOLERANCE_S:
            if self._strict:
                from repro.resilience.errors import OutOfOrderRecordError
                raise OutOfOrderRecordError(
                    f"record at t={time_s} precedes stream tail "
                    f"t={self._max_time}",
                    record_kind=getattr(record, "kind", None))
            self.records_out_of_order += 1
            from repro.obs import get_instrumentation
            get_instrumentation().registry.counter(
                "records_out_of_order_total").inc()
            record = dataclasses.replace(record, time_s=self._max_time)
            time_s = self._max_time
        if not self.records_fed:
            self._first_time = time_s
            self._max_time = time_s
        elif time_s > self._max_time:
            self._max_time = time_s
        self._end_time = time_s
        return record

    def feed(self, record: Record) -> None:
        """Ingest one record (raises after :meth:`finalize`)."""
        if self._finalized:
            raise RuntimeError("stream already finalized")
        record = self._admit(record)
        self.records_fed += 1
        if self._columns is not None:
            self._columns.push(record)
        if isinstance(record, ThroughputSampleRecord):
            return
        self._cells.push(record)
        self._publish_stable()
        self._emit_transitions()

    def feed_many(self, records: Iterable[Record]) -> None:
        """Ingest a chunk; identical to feeding record-by-record."""
        for record in records:
            self.feed(record)

    def _publish_stable(self) -> None:
        """Feed the detector every interval the stream clock has passed.

        The builder may still reabsorb its most recent interval on a
        same-timestamp state change, so only intervals with
        ``end_s < last_time_s`` (strictly) are final — published
        intervals are never retracted, hence neither are events.
        """
        intervals = self._cells.intervals
        cutoff = self._cells.last_time_s
        published = self._published
        detector = self.detector
        while published < len(intervals) \
                and intervals[published].end_s < cutoff:
            interval = intervals[published]
            detector.push(interval.cellset, interval.start_s, interval.end_s)
            published += 1
        if self.mode == "live" and published:
            # Live streams never look back: drop published intervals so
            # per-stream memory stays bounded by the dedup ring alone.
            del intervals[:published]
            published = 0
        self._published = published

    # ------------------------------------------------------------------
    # Live events
    # ------------------------------------------------------------------

    def _emit_transitions(self) -> None:
        if self._on_event is None:
            return
        detector = self.detector
        best = detector.best
        open_ = detector.best_open
        if best != self._last_best:
            name = "loop_onset" if self._last_best is None else "loop_update"
            self._last_best = best
            self._last_open = open_
            self._emit(name)
        elif best is not None and self._last_open and not open_:
            self._last_open = open_
            self._emit("loop_end")

    def _emit(self, name: str) -> None:
        detection = self.detector.detection()
        self._on_event(
            name,
            time_s=self._end_time,
            kind=detection.kind.value,
            start_index=detection.start_index,
            period=detection.period,
            repetitions=detection.repetitions,
            window_start_s=self.detector.window_start_s,
        )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def detection(self) -> LoopDetection:
        """The live verdict over the published (stable) prefix."""
        return self.detector.detection()

    def finalize(self, end_time_s: float | None = None,
                 ) -> RunAnalysis | StreamVerdict:
        """Flush pending state and return the stream's verdict.

        ``mode="full"``: a :class:`RunAnalysis` bit-identical to
        ``analyze_trace`` over the same records.  ``mode="live"``: a
        :class:`StreamVerdict`.  ``end_time_s`` extends the final
        interval past the last record, exactly like
        ``extract_cellset_sequence``'s parameter (the batch pipeline
        passes the last record's time, which is the default here).
        """
        if self._finalized:
            raise RuntimeError("stream already finalized")
        self._finalized = True
        if end_time_s is None and self.records_fed:
            end_time_s = self._end_time
        intervals = self._cells.finish(end_time_s)
        detector = self.detector
        for interval in intervals[self._published:]:
            detector.push(interval.cellset, interval.start_s, interval.end_s)
        self._published = len(intervals)
        self._emit_transitions()
        detection = detector.detection()
        duration_s = self._end_time - self._first_time \
            if self.records_fed else 0.0
        if self._columns is None:
            return StreamVerdict(
                detection=detection,
                records=self.records_fed,
                dedup_elements=len(detector),
                records_out_of_order=self.records_out_of_order,
                duration_s=duration_s,
            )
        rcolumns = self._columns.build()
        icolumns = IntervalColumns.from_intervals(intervals)
        return assemble_analysis(self.metadata, rcolumns, icolumns,
                                 intervals, detection, duration_s)
