"""Section 6: predicting S1 loop probability from RSRP features.

The paper's model, reproduced exactly:

* For each possible cell-set combination *i* at a location, the usage
  ratio is a logistic function of the PCell RSRP gap
  (Figure 21b, F17)::

      u_i = 1 / (1 + exp(-k * gap_P_i))

* The S1E3 loop probability given that combination decays with the
  RSRP gap between the two target (intra-channel) SCells
  (Figure 21a, F16)::

      p_i = max((1 - gap_S_i / t), 0) ** n

* The location's loop probability is ``P = sum_i u_i * p_i``.

``k``, ``t`` and ``n`` are learned by minimising the mean squared error
against loop probabilities measured in the fine-grained (dense) spatial
campaign; the fitted model then predicts the probability at the sparse
reality-check locations (Figure 22).

For S1E1/S1E2 the SCell-gap feature is replaced by the RSRP of the
*worst* serving SCell (the "bad apple"), with a logistic response.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.cells.cell import Rat
from repro.radio.environment import RadioEnvironment
from repro.radio.geometry import Point
from repro.rrc.capabilities import DeviceCapabilities
from repro.rrc.network import SaNetworkLogic
from repro.rrc.policies import OperatorPolicy

#: Feature value used when a combination has no competing cell at all.
NO_COMPETITOR_GAP_DB = 40.0


@dataclass(frozen=True)
class LocationFeatures:
    """RSRP features of one cell-set combination at one location.

    ``site_pci`` identifies the candidate PCell site the combination
    belongs to (one combination per site, F17).
    """

    pcell_gap_db: float
    scell_gap_db: float
    worst_scell_rsrp_dbm: float
    site_pci: int = -1


def logistic_usage(pcell_gap_db: float, k: float) -> float:
    """u_i = 1 / (1 + exp(-k * gap))."""
    return 1.0 / (1.0 + math.exp(-k * pcell_gap_db))


def s1e3_probability(scell_gap_db: float, t: float, n: float) -> float:
    """p_i = max((1 - gap / t), 0) ** n."""
    base = max(1.0 - scell_gap_db / t, 0.0)
    return base ** n


def s1e12_probability(worst_scell_rsrp_dbm: float, centre_dbm: float,
                      scale_db: float) -> float:
    """Logistic response in the worst SCell's RSRP (weaker -> likelier)."""
    return 1.0 / (1.0 + math.exp((worst_scell_rsrp_dbm - centre_dbm)
                                 / max(scale_db, 1e-6)))


@dataclass
class S1LoopPredictor:
    """Fitted parameters of the section-6 model."""

    k: float = 0.3
    t: float = 12.0
    n: float = 2.0
    e12_centre_dbm: float = -108.0
    e12_scale_db: float = 4.0
    include_e12: bool = False

    def combination_probability(self, features: LocationFeatures) -> float:
        p = s1e3_probability(features.scell_gap_db, self.t, self.n)
        if self.include_e12:
            p_e12 = s1e12_probability(features.worst_scell_rsrp_dbm,
                                      self.e12_centre_dbm, self.e12_scale_db)
            p = 1.0 - (1.0 - p) * (1.0 - p_e12)
        return p

    def predict(self, combinations: list[LocationFeatures]) -> float:
        """P = sum_i u_i p_i, with usage ratios normalised if they exceed 1."""
        if not combinations:
            return 0.0
        usages = [logistic_usage(c.pcell_gap_db, self.k) for c in combinations]
        total_usage = sum(usages)
        if total_usage > 1.0:
            usages = [u / total_usage for u in usages]
        probability = sum(u * self.combination_probability(c)
                          for u, c in zip(usages, combinations))
        return float(min(max(probability, 0.0), 1.0))


def extract_location_features(
    environment: RadioEnvironment,
    policy: OperatorPolicy,
    device: DeviceCapabilities,
    point: Point,
    fragile_channel: int,
) -> list[LocationFeatures]:
    """Build the per-combination features at one location.

    A combination is one choice of target PCell; the SCells it implies
    are the blind-addition set the network would configure (F17: the
    target SCells are used iff the target PCell is used).
    """
    propagation = environment.propagation
    network = SaNetworkLogic(environment, policy)

    # One combination per candidate *site* (cells sharing a PCI are
    # co-sited twins and imply the same blind SCell set, F17): the
    # combination's PCell is the site's strongest PCell-channel cell.
    best_per_site: dict[int, tuple[float, object]] = {}
    for channel in policy.sa_pcell_channels:
        for cell in environment.cells_on_channel(channel, Rat.NR):
            mean = propagation.mean_rsrp_dbm(cell, point)
            if mean <= policy.selection_threshold_dbm:
                continue
            current = best_per_site.get(cell.pci)
            if current is None or mean > current[0]:
                best_per_site[cell.pci] = (mean, cell)
    candidates = sorted(best_per_site.values(), key=lambda pair: pair[0],
                        reverse=True)[:4]
    if not candidates:
        return []

    features: list[LocationFeatures] = []
    for mean, cell in candidates:
        others = [other_mean for other_mean, other in candidates if other is not cell]
        pcell_gap = mean - max(others) if others else NO_COMPETITOR_GAP_DB

        scells = network.blind_scell_set(cell.identity, device)
        fragile_serving = [identity for identity in scells
                           if identity.channel == fragile_channel]
        if fragile_serving:
            serving = fragile_serving[0]
            serving_mean = propagation.mean_rsrp_dbm(environment.cell(serving), point)
            rivals = [propagation.mean_rsrp_dbm(rival, point)
                      for rival in environment.cells_on_channel(fragile_channel, Rat.NR)
                      if rival.identity != serving]
            scell_gap = (abs(serving_mean - max(rivals)) if rivals
                         else NO_COMPETITOR_GAP_DB)
        else:
            scell_gap = NO_COMPETITOR_GAP_DB

        if scells:
            worst = min(propagation.mean_rsrp_dbm(environment.cell(identity), point)
                        for identity in scells)
        else:
            worst = 0.0
        features.append(LocationFeatures(pcell_gap_db=pcell_gap,
                                         scell_gap_db=scell_gap,
                                         worst_scell_rsrp_dbm=worst,
                                         site_pci=cell.pci))
    return features


def fit_s1e3_model(
    feature_sets: list[list[LocationFeatures]],
    observed_probabilities: list[float],
    include_e12: bool = False,
) -> S1LoopPredictor:
    """Fit (k, t, n) — and the E1/E2 response if requested — by MSE.

    Parameters are optimised in log space to enforce positivity, with
    Nelder-Mead (the problem is tiny: 3-5 parameters, tens of points).
    """
    if len(feature_sets) != len(observed_probabilities):
        raise ValueError("feature sets and observations must align")
    if not feature_sets:
        raise ValueError("need at least one training location")

    targets = np.asarray(observed_probabilities, dtype=float)

    def build(params: np.ndarray) -> S1LoopPredictor:
        k = math.exp(params[0])
        t = math.exp(params[1])
        n = math.exp(params[2])
        predictor = S1LoopPredictor(k=k, t=t, n=n, include_e12=include_e12)
        if include_e12:
            predictor.e12_centre_dbm = params[3]
            predictor.e12_scale_db = math.exp(params[4])
        return predictor

    base_initial = (math.log(0.3), math.log(12.0), math.log(2.0))

    def loss(params: np.ndarray) -> float:
        predictor = build(params)
        predictions = np.array([predictor.predict(features)
                                for features in feature_sets])
        mse = float(np.mean((predictions - targets) ** 2))
        # Mild regularisation keeps (t, n) identifiable: without it only
        # the ratio n/t matters once the curve degenerates to an
        # exponential, and the optimiser wanders off to huge values.
        penalty = 1e-4 * float(np.sum((params[:3] - np.asarray(base_initial)) ** 2))
        return mse + penalty

    initial = list(base_initial)
    if include_e12:
        initial += [-106.0, math.log(4.0)]
    result = optimize.minimize(loss, np.asarray(initial), method="Nelder-Mead",
                               options={"maxiter": 4000, "xatol": 1e-4,
                                        "fatol": 1e-7})
    return build(result.x)
