"""Channel-level cause analysis (section 5.3: Table 5, Figures 17-18).

Finding F14: RRC policies are channel-specific, so the analysis pivots
every loop instance on the channels its serving cells used: usage
breakdown per channel in loop vs no-loop runs, the SCell-modification
failure ratio per channel, and the RSRP distributions of serving cells
on the problem channel.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.classify import LoopSubtype
from repro.core.pipeline import RunAnalysis


def _normalise(counts: dict[int, int]) -> dict[int, float]:
    total = sum(counts.values())
    if total == 0:
        return {channel: 0.0 for channel in counts}
    return {channel: count / total for channel, count in counts.items()}


def _problem_channels(analysis: RunAnalysis, use_nr: bool) -> set[int]:
    """Channels of the problematic cells identified by classification."""
    from repro.cells.cell import Rat

    wanted = Rat.NR if use_nr else Rat.LTE
    return {transition.problem_cell.channel
            for transition in analysis.transitions
            if transition.problem_cell is not None
            and transition.problem_cell.rat is wanted}


def channel_usage_breakdown(
    analyses: list[RunAnalysis],
    use_nr: bool = True,
) -> dict[str, dict[int, float]]:
    """Per-channel usage shares for no-loop runs, loop runs, and each sub-type.

    Matching the paper's Table 5 construction: a *no-loop* run
    contributes one incidence per serving channel (all channels "evenly
    observed"); a *loop* run pivots on the channel(s) of its problematic
    cell(s) — which is what makes the problem channel dominate the loop
    column.  Each category's shares sum to 1.
    """
    counts: dict[str, dict[int, int]] = defaultdict(lambda: defaultdict(int))
    for analysis in analyses:
        if analysis.has_loop:
            channels = _problem_channels(analysis, use_nr)
            if not channels:
                channels = (analysis.serving_nr_channels if use_nr
                            else analysis.serving_lte_channels)
            for category in ("loop", analysis.subtype.value):
                for channel in channels:
                    counts[category][channel] += 1
        else:
            channels = (analysis.serving_nr_channels if use_nr
                        else analysis.serving_lte_channels)
            for channel in channels:
                counts["no-loop"][channel] += 1
    return {category: _normalise(dict(channel_counts))
            for category, channel_counts in counts.items()}


@dataclass(frozen=True)
class ModFailureStats:
    """SCell modification attempts/failures on one channel (Table 5)."""

    channel: int
    attempts: int
    failures: int

    @property
    def failure_ratio(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.failures / self.attempts


def scell_mod_failure_ratios(analyses: list[RunAnalysis]) -> dict[int, ModFailureStats]:
    """Per-channel SCell modification failure ratio (Table 5, last column)."""
    attempts: dict[int, int] = defaultdict(int)
    failures: dict[int, int] = defaultdict(int)
    for analysis in analyses:
        for outcome in analysis.scell_mods:
            attempts[outcome.channel] += 1
            if outcome.failed:
                failures[outcome.channel] += 1
    return {channel: ModFailureStats(channel, attempts[channel], failures[channel])
            for channel in attempts}


def tenth_percentile_rsrp_per_location(
    analyses: list[RunAnalysis], channel: int,
) -> dict[str, float]:
    """The 10th-percentile serving RSRP on one channel, per test location.

    Figure 17a plots the CDF of these values across locations.
    """
    samples: dict[str, list[float]] = defaultdict(list)
    for analysis in analyses:
        values = analysis.serving_nr_rsrp.get(channel)
        if values:
            samples[analysis.metadata.location].extend(values)
    return {location: float(np.percentile(values, 10))
            for location, values in samples.items() if values}


def median_rsrp_per_area(analyses: list[RunAnalysis],
                         channel: int) -> dict[str, float]:
    """Median serving RSRP on one channel per area (Figure 17b)."""
    samples: dict[str, list[float]] = defaultdict(list)
    for analysis in analyses:
        values = analysis.serving_nr_rsrp.get(channel)
        if values:
            samples[analysis.metadata.area].extend(values)
    return {area: float(np.median(values)) for area, values in samples.items()}


def median_rsrp_per_subtype(analyses: list[RunAnalysis],
                            channel: int) -> dict[str, float]:
    """Median serving RSRP on one channel per loop sub-type + no-loop (Fig 17c)."""
    samples: dict[str, list[float]] = defaultdict(list)
    for analysis in analyses:
        values = analysis.serving_nr_rsrp.get(channel)
        if not values:
            continue
        key = analysis.subtype.value if analysis.has_loop else "no-loop"
        samples[key].extend(values)
    return {key: float(np.median(values)) for key, values in samples.items()}


def nsa_channel_usage(
    analyses: list[RunAnalysis],
    subtype: LoopSubtype,
    use_nr: bool,
) -> dict[str, dict[int, float]]:
    """Figure 18: channel usage in runs of one NSA loop sub-type vs no-loop."""
    loop_counts: dict[int, int] = defaultdict(int)
    no_loop_counts: dict[int, int] = defaultdict(int)
    for analysis in analyses:
        if analysis.has_loop and analysis.subtype is subtype:
            channels = _problem_channels(analysis, use_nr)
            if not channels:
                channels = (analysis.serving_nr_channels if use_nr
                            else analysis.serving_lte_channels)
            for channel in channels:
                loop_counts[channel] += 1
        elif not analysis.has_loop:
            channels = (analysis.serving_nr_channels if use_nr
                        else analysis.serving_lte_channels)
            for channel in channels:
                no_loop_counts[channel] += 1
    return {subtype.value: _normalise(dict(loop_counts)),
            "no-loop": _normalise(dict(no_loop_counts))}
