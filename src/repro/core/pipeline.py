"""End-to-end analysis of one run: trace -> RunAnalysis.

``analyze_trace`` is the single entry point the campaign harness and the
benchmarks use: it replays the signaling records into cell set
intervals, runs loop detection and classification, computes performance
metrics, and gathers the bookkeeping statistics (unique cells, cell
sets, RSRP sample counts, SCell modification outcomes) that feed
Table 3, Table 5 and Figures 17-19.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cells.cell import CellIdentity, Rat
from repro.core.cellset import CellSet, CellSetInterval, extract_cellset_sequence
from repro.core.columnar import (
    IntervalColumns,
    RecordColumns,
    classify_loop_columnar,
    loop_cycles_columnar,
    run_performance_columnar,
    scg_measurement_delays_columnar,
)
from repro.core.deadline import check_deadline
from repro.core.classify import LoopSubtype, OffTransition, classify_loop
from repro.core.loops import LoopDetection, LoopKind, detect_loop, loop_window
from repro.core.metrics import (
    CycleMetrics,
    RunPerformance,
    loop_cycles,
    run_performance,
    scg_measurement_delays,
)

import numpy as np
from repro.obs import get_instrumentation
from repro.traces.log import SignalingTrace, TraceMetadata
from repro.traces.records import (
    MeasurementReportRecord,
    MmStateRecord,
    Record,
    RrcReconfigurationRecord,
)


@dataclass(frozen=True)
class ScellModOutcome:
    """One SCell modification attempt: the added cell's channel + outcome."""

    channel: int
    failed: bool


@dataclass
class RunAnalysis:
    """Everything the paper's figures need to know about one run."""

    metadata: TraceMetadata
    intervals: list[CellSetInterval]
    detection: LoopDetection
    subtype: LoopSubtype
    transitions: list[OffTransition]
    cycles: list[CycleMetrics]
    performance: RunPerformance
    scg_meas_delays: list[float]
    scell_mods: list[ScellModOutcome]
    serving_nr_channels: set[int] = field(default_factory=set)
    serving_lte_channels: set[int] = field(default_factory=set)
    observed_cells: set[CellIdentity] = field(default_factory=set)
    unique_cellsets: set[CellSet] = field(default_factory=set)
    n_rsrp_samples: int = 0
    n_cs_samples: int = 0
    duration_s: float = 0.0
    # RSRP of serving cells per NR channel (for the Figure 17 analysis).
    serving_nr_rsrp: dict[int, list[float]] = field(default_factory=dict)

    @property
    def has_loop(self) -> bool:
        return self.detection.is_loop

    @property
    def loop_kind(self) -> LoopKind:
        return self.detection.kind


def _scell_modification_outcomes(records: list[Record]) -> list[ScellModOutcome]:
    """Find SCell modifications and whether each was followed by the exception.

    ``records`` is the run's already-materialized signaling record list;
    the exception lookahead walks it by index inside the 1.5 s window
    instead of slicing a fresh tail list per reconfiguration.

    Retained as the per-record oracle for
    :func:`_scell_modification_outcomes_columnar`.
    """
    outcomes: list[ScellModOutcome] = []
    n_records = len(records)
    for index, record in enumerate(records):
        if not isinstance(record, RrcReconfigurationRecord):
            continue
        if record.is_handover or record.adds_scg or record.release_scg:
            continue
        if not (record.scell_add_mod and record.scell_release_indices):
            continue
        failed = False
        cutoff = record.time_s + 1.5
        later_index = index + 1
        while later_index < n_records:
            later = records[later_index]
            if later.time_s > cutoff:
                break
            if isinstance(later, MmStateRecord) and later.state == "DEREGISTERED":
                failed = True
                break
            later_index += 1
        for entry in record.scell_add_mod:
            outcomes.append(ScellModOutcome(channel=entry.identity.channel,
                                            failed=failed))
    return outcomes


def _scell_modification_outcomes_columnar(
        columns: RecordColumns) -> list[ScellModOutcome]:
    """Columnar :func:`_scell_modification_outcomes`.

    The per-reconfiguration record lookahead becomes one
    ``searchsorted`` into the DEREGISTERED line indices: the first
    DEREGISTERED after the reconfiguration (record order) is the
    earliest one, so it alone decides whether the exception fell inside
    the 1.5 s window — any earlier record past the cutoff would also
    place that DEREGISTERED past the cutoff (times are non-decreasing).
    """
    outcomes: list[ScellModOutcome] = []
    dereg_t = columns.dereg_t
    dereg_index = columns.dereg_sig_index
    for position, record in enumerate(columns.scellmod):
        if record.is_handover or record.adds_scg or record.release_scg:
            continue
        after = int(np.searchsorted(dereg_index,
                                    columns.scellmod_sig_index[position],
                                    side="right"))
        failed = bool(after < dereg_t.size
                      and dereg_t[after] <= record.time_s + 1.5)
        for entry in record.scell_add_mod:
            outcomes.append(ScellModOutcome(channel=entry.identity.channel,
                                            failed=failed))
    return outcomes


def _collect_measurement_stats(records: list[Record],
                               analysis: RunAnalysis) -> None:
    """Tally observed cells, RSRP samples, and per-channel serving RSRP.

    Reports timestamped before the first interval carry no known
    serving set — they still count toward ``observed_cells`` and
    ``n_rsrp_samples`` but must not be attributed to the first
    interval's cells (that inflates ``serving_nr_rsrp``, Figure 17).

    Retained as the per-record oracle for
    :func:`_collect_measurement_stats_columnar`.
    """
    serving_now: frozenset[CellIdentity] | set[CellIdentity] = set()
    interval_index = 0
    intervals = analysis.intervals
    for record in records:
        if not isinstance(record, MeasurementReportRecord):
            continue
        while interval_index < len(intervals) - 1 and \
                intervals[interval_index].end_s <= record.time_s:
            interval_index += 1
        if not intervals or record.time_s < intervals[0].start_s:
            serving_now = set()
        else:
            serving_now = intervals[interval_index].cellset.all_cells()
        for measurement in record.measurements:
            analysis.observed_cells.add(measurement.identity)
            analysis.n_rsrp_samples += 1
            identity = measurement.identity
            if identity.rat is Rat.NR and identity in serving_now:
                analysis.serving_nr_rsrp.setdefault(identity.channel, []).append(
                    measurement.rsrp_dbm)


def _collect_measurement_stats_columnar(rcolumns: RecordColumns,
                                        icolumns: IntervalColumns,
                                        analysis: RunAnalysis) -> None:
    """Columnar :func:`_collect_measurement_stats`.

    The interval cursor becomes one ``searchsorted`` of the report
    times into the interval ends (sans the last — the cursor never
    advances past it); pre-timeline reports get the empty serving set.
    Cell-set membership is resolved per *unique* cell set, not per
    report.
    """
    intervals_present = icolumns.start.size > 0
    empty_serving: frozenset[CellIdentity] = frozenset()
    serving_cache = [cellset.all_cells() for cellset in icolumns.cellsets]
    if intervals_present:
        indices = np.searchsorted(icolumns.end[:-1], rcolumns.meas_t,
                                  side="right")
        pre_timeline = rcolumns.meas_t < icolumns.start[0]
    observed = analysis.observed_cells
    serving_nr_rsrp = analysis.serving_nr_rsrp
    for position, record in enumerate(rcolumns.meas_reports):
        if not intervals_present or pre_timeline[position]:
            serving_now = empty_serving
        else:
            serving_now = serving_cache[
                icolumns.cellset_id[indices[position]]]
        for measurement in record.measurements:
            identity = measurement.identity
            observed.add(identity)
            analysis.n_rsrp_samples += 1
            if identity.rat is Rat.NR and identity in serving_now:
                serving_nr_rsrp.setdefault(identity.channel, []).append(
                    measurement.rsrp_dbm)


def assemble_analysis(metadata: TraceMetadata,
                      rcolumns: RecordColumns,
                      icolumns: IntervalColumns,
                      intervals: list[CellSetInterval],
                      detection: LoopDetection,
                      duration_s: float) -> RunAnalysis:
    """Classify + metrics + stats: the analysis stages past detection.

    Shared verbatim between :func:`analyze_trace` and
    :meth:`repro.core.incremental.IncrementalAnalyzer.finalize` — given
    the same columns, intervals and detection, both produce the same
    :class:`RunAnalysis` by construction.
    """
    registry = get_instrumentation().registry
    with registry.timer("stage_seconds", stage="classify"):
        if detection.is_loop:
            subtype, transitions = classify_loop_columnar(rcolumns,
                                                          icolumns)
        else:
            subtype, transitions = LoopSubtype.UNKNOWN, []
    check_deadline("classify")
    with registry.timer("stage_seconds", stage="loop_metrics"):
        cycles = loop_cycles_columnar(
            icolumns, loop_window(intervals, detection)) \
            if detection.is_loop else []
        performance = run_performance_columnar(icolumns, rcolumns)
    check_deadline("loop_metrics")

    analysis = RunAnalysis(
        metadata=metadata,
        intervals=intervals,
        detection=detection,
        subtype=subtype,
        transitions=transitions,
        cycles=cycles,
        performance=performance,
        scg_meas_delays=scg_measurement_delays_columnar(rcolumns),
        scell_mods=_scell_modification_outcomes_columnar(rcolumns),
        duration_s=duration_s,
        n_cs_samples=len(intervals),
    )
    with registry.timer("stage_seconds", stage="collect_stats"):
        analysis.unique_cellsets.update(icolumns.cellsets)
        for cellset in icolumns.cellsets:
            for cell in cellset.all_cells():
                analysis.observed_cells.add(cell)
                if cell.rat is Rat.NR:
                    analysis.serving_nr_channels.add(cell.channel)
                else:
                    analysis.serving_lte_channels.add(cell.channel)
        _collect_measurement_stats_columnar(rcolumns, icolumns, analysis)
    return analysis


def analyze_trace(trace: SignalingTrace) -> RunAnalysis:
    """Run the full analysis pipeline on one signaling trace.

    Each stage reports a ``stage_seconds`` timer and a span into the
    active instrumentation (see :mod:`repro.obs`); with the default
    no-op bundle these are empty calls and the stage structure is
    unchanged.  Between stages the ambient run deadline is checked
    cooperatively (see :mod:`repro.core.deadline`), so a run that blows
    its wall-clock budget raises :class:`RunTimeoutError` at the next
    stage boundary instead of running to completion.
    """
    obs = get_instrumentation()
    registry = obs.registry
    with obs.tracer.span("analyze", operator=trace.metadata.operator,
                         area=trace.metadata.area,
                         location=trace.metadata.location):
        end_time = trace.records[-1].time_s if trace.records else 0.0
        with registry.timer("stage_seconds", stage="extract_cellsets"):
            rcolumns = RecordColumns.from_trace(trace)
            intervals = extract_cellset_sequence(rcolumns.signaling,
                                                 end_time_s=end_time)
            icolumns = IntervalColumns.from_intervals(intervals)
        check_deadline("extract_cellsets")
        with registry.timer("stage_seconds", stage="detect_loop"):
            detection = detect_loop(intervals)
        check_deadline("detect_loop")
        analysis = assemble_analysis(trace.metadata, rcolumns, icolumns,
                                     intervals, detection, trace.duration_s)
        registry.counter("pipeline_runs_analyzed_total").inc()
        if detection.is_loop:
            registry.counter("pipeline_loops_detected_total").inc(
                kind=detection.kind.value)
            registry.counter("pipeline_loop_subtype_total").inc(
                subtype=analysis.subtype.value)
    return analysis
