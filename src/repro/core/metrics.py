"""Performance metrics of loops (sections 4.2-4.3, Figures 10, 11, 19).

From a run's cell set timeline and throughput capture we derive:

* the ON-OFF **cycles**: (ON duration, OFF duration) pairs, giving cycle
  time, OFF time and OFF ratio (Figure 10); when a loop was detected the
  extraction is restricted to the loop's own time window so pre-loop and
  post-loop transitions cannot pollute the distributions;
* the **download speed** during ON and OFF periods and the per-cycle
  speed loss (Figures 1b and 11);
* the **5G measurement recovery delay** after an SCG failure — how long
  until the next measurement report contains any 5G cell (Figure 19c,
  the OP_V 30-second-multiple behaviour).

The speed split is a single two-pointer merge of the (sorted) 1 Hz
throughput series against the 5G timeline segments: ON/OFF buckets,
per-segment sample lists and per-cycle losses all come out of one pass,
instead of rescanning the whole series per segment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cells.cell import Rat
from repro.core.cellset import CellSetInterval, five_g_timeline
from repro.traces.records import MeasurementReportRecord, Record, ScgFailureRecord


@dataclass(frozen=True)
class CycleMetrics:
    """One ON-OFF cycle of a loop."""

    on_s: float
    off_s: float

    @property
    def cycle_s(self) -> float:
        return self.on_s + self.off_s

    @property
    def off_ratio(self) -> float:
        if self.cycle_s <= 0:
            return 0.0
        return self.off_s / self.cycle_s


def loop_cycles(intervals: list[CellSetInterval],
                window: tuple[float, float] | None = None) -> list[CycleMetrics]:
    """Extract every complete ON-then-OFF cycle from the 5G timeline.

    ``window`` restricts extraction to a [start, end) time span —
    normally the detected loop's span (see
    :func:`repro.core.loops.loop_window`), so cycles outside the
    periodic region do not contaminate the Figure 10 distributions.
    Segments straddling the window boundary are clipped to it.
    """
    segments = five_g_timeline(intervals)
    if window is not None:
        start_w, end_w = window
        clipped = []
        for on, start, end in segments:
            start_c = max(start, start_w)
            end_c = min(end, end_w)
            if end_c > start_c:
                clipped.append((on, start_c, end_c))
        segments = clipped
    cycles: list[CycleMetrics] = []
    for index in range(len(segments) - 1):
        on_segment = segments[index]
        off_segment = segments[index + 1]
        if on_segment[0] and not off_segment[0]:
            cycles.append(CycleMetrics(on_s=on_segment[2] - on_segment[1],
                                       off_s=off_segment[2] - off_segment[1]))
    return cycles


@dataclass
class RunPerformance:
    """Speed statistics of one run split by 5G state."""

    on_speed_samples: list[float] = field(default_factory=list)
    off_speed_samples: list[float] = field(default_factory=list)
    cycle_speed_losses: list[float] = field(default_factory=list)

    @property
    def median_on_mbps(self) -> float:
        if not self.on_speed_samples:
            return 0.0
        return float(np.median(self.on_speed_samples))

    @property
    def median_off_mbps(self) -> float:
        if not self.off_speed_samples:
            return 0.0
        return float(np.median(self.off_speed_samples))

    @property
    def median_speed_loss_mbps(self) -> float:
        if not self.cycle_speed_losses:
            return max(self.median_on_mbps - self.median_off_mbps, 0.0)
        return float(np.median(self.cycle_speed_losses))


def run_performance(intervals: list[CellSetInterval],
                    throughput_series: list[tuple[float, float]]) -> RunPerformance:
    """Split the 1 Hz speed series by 5G state and compute per-cycle losses.

    ``throughput_series`` must be sorted by time (traces guarantee it);
    the merge against the timeline segments is a single forward pass.
    Samples captured *before* the first signaling record carry no known
    5G state and are dropped; samples past the final segment extrapolate
    its state, as the capture simply outlived the signaling.
    """
    segments = five_g_timeline(intervals)
    performance = RunPerformance()
    if not segments or not throughput_series:
        return performance
    first_start = segments[0][1]
    last_on, _last_start, last_end = segments[-1]
    on_samples = performance.on_speed_samples
    off_samples = performance.off_speed_samples
    segment_samples: list[list[float]] = [[] for _ in segments]
    cursor = 0
    last_index = len(segments) - 1
    for t, mbps in throughput_series:
        if t < first_start:
            continue
        if t >= last_end:
            (on_samples if last_on else off_samples).append(mbps)
            continue
        while cursor < last_index and t >= segments[cursor][2]:
            cursor += 1
        segment_samples[cursor].append(mbps)
        (on_samples if segments[cursor][0] else off_samples).append(mbps)
    # Per-cycle loss: median ON speed minus median OFF speed inside each
    # consecutive (ON, OFF) segment pair.
    for index in range(len(segments) - 1):
        if not (segments[index][0] and not segments[index + 1][0]):
            continue
        on_speeds = segment_samples[index]
        off_speeds = segment_samples[index + 1]
        if on_speeds and off_speeds:
            loss = float(np.median(on_speeds)) - float(np.median(off_speeds))
            performance.cycle_speed_losses.append(loss)
    return performance


def scg_measurement_delays(records: list[Record]) -> list[float]:
    """Delay from each SCG failure to the next report containing a 5G cell.

    One pass splits the (time-ordered) records into failure times and
    the times of reports that contain any NR cell; a forward-only cursor
    then matches each failure to its recovery report, so the matching is
    O(failures + reports) instead of O(failures x reports).
    """
    failure_times: list[float] = []
    nr_report_times: list[float] = []
    for record in records:
        if isinstance(record, ScgFailureRecord):
            failure_times.append(record.time_s)
        elif isinstance(record, MeasurementReportRecord):
            if any(measurement.identity.rat is Rat.NR
                   for measurement in record.measurements):
                nr_report_times.append(record.time_s)
    delays: list[float] = []
    cursor = 0
    n_reports = len(nr_report_times)
    for failure_time in failure_times:
        while cursor < n_reports and nr_report_times[cursor] <= failure_time:
            cursor += 1
        if cursor < n_reports:
            delays.append(nr_report_times[cursor] - failure_time)
    return delays
