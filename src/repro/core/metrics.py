"""Performance metrics of loops (sections 4.2-4.3, Figures 10, 11, 19).

From a run's cell set timeline and throughput capture we derive:

* the ON-OFF **cycles**: (ON duration, OFF duration) pairs, giving cycle
  time, OFF time and OFF ratio (Figure 10);
* the **download speed** during ON and OFF periods and the per-cycle
  speed loss (Figures 1b and 11);
* the **5G measurement recovery delay** after an SCG failure — how long
  until the next measurement report contains any 5G cell (Figure 19c,
  the OP_V 30-second-multiple behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cells.cell import Rat
from repro.core.cellset import CellSetInterval, five_g_timeline
from repro.traces.records import MeasurementReportRecord, Record, ScgFailureRecord


@dataclass(frozen=True)
class CycleMetrics:
    """One ON-OFF cycle of a loop."""

    on_s: float
    off_s: float

    @property
    def cycle_s(self) -> float:
        return self.on_s + self.off_s

    @property
    def off_ratio(self) -> float:
        if self.cycle_s <= 0:
            return 0.0
        return self.off_s / self.cycle_s


def loop_cycles(intervals: list[CellSetInterval]) -> list[CycleMetrics]:
    """Extract every complete ON-then-OFF cycle from the 5G timeline."""
    segments = five_g_timeline(intervals)
    cycles: list[CycleMetrics] = []
    for index in range(len(segments) - 1):
        on_segment = segments[index]
        off_segment = segments[index + 1]
        if on_segment[0] and not off_segment[0]:
            cycles.append(CycleMetrics(on_s=on_segment[2] - on_segment[1],
                                       off_s=off_segment[2] - off_segment[1]))
    return cycles


def _is_on_at(segments: list[tuple[bool, float, float]], t: float) -> bool:
    for on, start, end in segments:
        if start <= t < end:
            return on
    return bool(segments and segments[-1][0] and t >= segments[-1][2])


@dataclass
class RunPerformance:
    """Speed statistics of one run split by 5G state."""

    on_speed_samples: list[float] = field(default_factory=list)
    off_speed_samples: list[float] = field(default_factory=list)
    cycle_speed_losses: list[float] = field(default_factory=list)

    @property
    def median_on_mbps(self) -> float:
        if not self.on_speed_samples:
            return 0.0
        return float(np.median(self.on_speed_samples))

    @property
    def median_off_mbps(self) -> float:
        if not self.off_speed_samples:
            return 0.0
        return float(np.median(self.off_speed_samples))

    @property
    def median_speed_loss_mbps(self) -> float:
        if not self.cycle_speed_losses:
            return max(self.median_on_mbps - self.median_off_mbps, 0.0)
        return float(np.median(self.cycle_speed_losses))


def run_performance(intervals: list[CellSetInterval],
                    throughput_series: list[tuple[float, float]]) -> RunPerformance:
    """Split the 1 Hz speed series by 5G state and compute per-cycle losses."""
    segments = five_g_timeline(intervals)
    performance = RunPerformance()
    if not segments or not throughput_series:
        return performance
    for t, mbps in throughput_series:
        if _is_on_at(segments, t):
            performance.on_speed_samples.append(mbps)
        else:
            performance.off_speed_samples.append(mbps)
    # Per-cycle loss: median ON speed minus median OFF speed inside each
    # consecutive (ON, OFF) segment pair.
    for index in range(len(segments) - 1):
        on_segment = segments[index]
        off_segment = segments[index + 1]
        if not (on_segment[0] and not off_segment[0]):
            continue
        on_speeds = [mbps for t, mbps in throughput_series
                     if on_segment[1] <= t < on_segment[2]]
        off_speeds = [mbps for t, mbps in throughput_series
                      if off_segment[1] <= t < off_segment[2]]
        if on_speeds and off_speeds:
            loss = float(np.median(on_speeds)) - float(np.median(off_speeds))
            performance.cycle_speed_losses.append(loss)
    return performance


def scg_measurement_delays(records: list[Record]) -> list[float]:
    """Delay from each SCG failure to the next report containing a 5G cell."""
    delays: list[float] = []
    failures = [record for record in records if isinstance(record, ScgFailureRecord)]
    reports = [record for record in records
               if isinstance(record, MeasurementReportRecord)]
    for failure in failures:
        for report in reports:
            if report.time_s <= failure.time_s:
                continue
            has_nr = any(measurement.identity.rat is Rat.NR
                         for measurement in report.measurements)
            if has_nr:
                delays.append(report.time_s - failure.time_s)
                break
    return delays
