"""Section 6 end to end: predict S1E3 loop probability from RSRP features.

1. Find a location with an S1E3 loop (like P16 in the paper).
2. Run a fine-grained (dense) spatial campaign around it and measure the
   loop probability at each nearby grid point (Figure 20).
3. Extract the paper's two features per cell-set combination — the PCell
   RSRP gap and the intra-channel SCell RSRP gap — and fit the model
   u_i = logistic(k * gapP), p_i = max((1 - gapS/t), 0)^n, P = sum u_i p_i.
4. Predict the loop probability at held-out sparse locations and report
   the error distribution (Figure 22).

Run:  python examples/loop_prediction.py
"""

from repro.analysis.stats import fraction_within, spearman
from repro.campaign import build_deployment, device, operator
from repro.campaign.locations import dense_grid_locations, sparse_locations
from repro.campaign.runner import loop_probability_at, run_once
from repro.campaign.operators import OP_T_PROBLEM_CHANNEL
from repro.core.prediction import extract_location_features, fit_s1e3_model


def main() -> None:
    profile = operator("OP_T")
    deployment = build_deployment(profile, "A1")
    phone = device("OnePlus 12R")
    area = profile.areas[0].area

    # 1. Find an S1E3 site.
    anchor = None
    for index, point in enumerate(sparse_locations(area, 30, seed=7)):
        result = run_once(deployment, profile, phone, point, f"P{index}", 0,
                          duration_s=300)
        if result.has_loop and result.analysis.subtype.value == "S1E3":
            anchor = point
            break
    if anchor is None:
        raise RuntimeError("no S1E3 loop found")
    print(f"S1E3 anchor at ({anchor.x_m:.0f}, {anchor.y_m:.0f}) m")

    # 2. Dense spatial ground truth around the anchor.
    dense = dense_grid_locations(anchor, area, half_extent_m=150, spacing_m=75)
    features, observed = [], []
    for index, point in enumerate(dense):
        probability = loop_probability_at(deployment, profile, phone, point,
                                          f"D{index}", n_runs=4, duration_s=240,
                                          subtype_value="S1E3")
        features.append(extract_location_features(
            deployment.environment, profile.policy, phone, point,
            OP_T_PROBLEM_CHANNEL))
        observed.append(probability)
        print(f"  dense point {index:2d}: measured P(S1E3) = {probability:.2f}")

    # 3. Fit the model.
    model = fit_s1e3_model(features, observed)
    print(f"\nfitted parameters: k={model.k:.3f}, t={model.t:.1f}, n={model.n:.2f}")

    # 4. Evaluate on held-out sparse locations.
    errors, truths, predictions = [], [], []
    for index, point in enumerate(sparse_locations(area, 12, seed=21)):
        truth = loop_probability_at(deployment, profile, phone, point,
                                    f"E{index}", n_runs=4, duration_s=240,
                                    subtype_value="S1E3")
        predicted = model.predict(extract_location_features(
            deployment.environment, profile.policy, phone, point,
            OP_T_PROBLEM_CHANNEL))
        errors.append(predicted - truth)
        truths.append(truth)
        predictions.append(predicted)
        print(f"  sparse point {index:2d}: predicted {predicted:.2f} "
              f"vs measured {truth:.2f}")

    print(f"\nwithin ±25%: {fraction_within(errors, 0.25):.0%} of locations")
    print(f"Spearman(prediction, truth) = {spearman(predictions, truths):.2f}")


if __name__ == "__main__":
    main()
