"""Section 7 / Q3: what can operators do about the loops?

Applies the paper's implied remedies to the operator profiles and
re-runs a one-area campaign for each, showing the loops disappear:

1. OP_T: serve every device the V17-style full (uplink+downlink) n25
   SCell configuration — removes the fragile path behind S1E1/S1E2/S1E3.
2. OP_A: allow 5G alongside channel 5815 (drop the redirect policy) —
   removes the N2E1 ping-pong and the N1 redirect failures.

Run:  python examples/policy_remedies.py
"""

import copy
import dataclasses

from repro.campaign import CampaignConfig, CampaignRunner, operator
from repro.cells.cell import Rat
from repro.rrc.policies import ChannelPolicy


def run_with(profile, areas, locations=8, runs=3):
    config = CampaignConfig(area_names=areas, locations_per_area=locations,
                            a1_locations=locations, runs_per_location=runs,
                            a1_runs_per_location=runs, duration_s=300)
    return CampaignRunner([profile], config).run()


def main() -> None:
    print("remedy 1: fix OP_T's downlink-only n25 SCell configuration")
    baseline = run_with(operator("OP_T"), ["A1"])
    fixed_profile = copy.deepcopy(operator("OP_T"))
    for channel in (387410, 398410):
        fixed_profile.policy.channel_policies[channel] = ChannelPolicy(
            channel, Rat.NR, downlink_only_scell_config=False)
    fixed = run_with(fixed_profile, ["A1"])
    print(f"  loop ratio: {baseline.loop_ratio():.0%} -> "
          f"{fixed.loop_ratio():.0%}")

    print("\nremedy 2: allow 5G on OP_A's channel 5815")
    baseline = run_with(operator("OP_A"), ["A6"])
    fixed_profile = copy.deepcopy(operator("OP_A"))
    old = fixed_profile.policy.channel_policies[5815]
    fixed_profile.policy.channel_policies[5815] = dataclasses.replace(
        old, allows_scg=True, redirect_on_5g_report_to=None)
    fixed = run_with(fixed_profile, ["A6"])
    print(f"  loop ratio: {baseline.loop_ratio():.0%} -> "
          f"{fixed.loop_ratio():.0%}")

    print("\nremedy 3: shorten OP_V's 30 s SCG-recovery configuration cadence")
    baseline = run_with(operator("OP_V"), ["A11"])
    fixed_profile = copy.deepcopy(operator("OP_V"))
    fixed_profile.policy.scg_recovery_config_period_s = 0.0
    fixed = run_with(fixed_profile, ["A11"])

    from repro.core.classify import LoopSubtype

    def median_n2e2_off(result):
        cycles = result.cycles_by_subtype().get(LoopSubtype.N2E2, [])
        offs = sorted(cycle.off_s for cycle in cycles)
        return offs[len(offs) // 2] if offs else 0.0

    print(f"  loops remain ({fixed.loop_ratio():.0%}) but the median N2E2 "
          f"OFF time drops: {median_n2e2_off(baseline):.1f}s -> "
          f"{median_n2e2_off(fixed):.1f}s")


if __name__ == "__main__":
    main()
