"""Analyse a signaling trace from disk — the released-dataset workflow.

The paper ships its captures and analysis scripts; the equivalent here
is: save a capture as JSONL, load it back with the parser, and run the
pipeline on the parsed records only.  This is the API a user would point
at their own (converted) Network Signal Guru logs.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.campaign import build_deployment, device, operator
from repro.campaign.locations import sparse_locations
from repro.campaign.runner import run_once
from repro.core.pipeline import analyze_trace
from repro.traces.log import SignalingTrace


def main() -> None:
    profile = operator("OP_V")
    deployment = build_deployment(profile, "A10")
    phone = device("Pixel 5")

    # Capture a run and persist it, exactly like a field capture would be.
    point = sparse_locations(profile.area_spec("A10").area, 12, seed=4)[3]
    captured = run_once(deployment, profile, phone, point, "PV3", 0,
                        duration_s=300, keep_trace=True)
    trace_path = Path(tempfile.gettempdir()) / "opv_pv3_run0.jsonl"
    captured.trace.save(trace_path)
    print(f"saved {len(captured.trace)} records to {trace_path}")

    # Load it back and analyse from the file alone.
    trace = SignalingTrace.load(trace_path)
    analysis = analyze_trace(trace)

    print(f"operator={trace.metadata.operator} device={trace.metadata.device}")
    print(f"cell set changes: {analysis.n_cs_samples}, "
          f"unique cell sets: {len(analysis.unique_cellsets)}")
    print(f"loop: {analysis.detection.kind.value}", end="")
    if analysis.has_loop:
        print(f" (sub-type {analysis.subtype.value}, "
              f"x{analysis.detection.repetitions} repetitions)")
        for transition in analysis.transitions[:5]:
            print(f"  5G OFF at t={transition.time_s:.1f}s "
                  f"-> {transition.subtype.value}")
    else:
        print()
    print(f"5G serving channels seen: {sorted(analysis.serving_nr_channels)}")
    print(f"4G serving channels seen: {sorted(analysis.serving_lte_channels)}")


if __name__ == "__main__":
    main()
