"""Walking experiment (section 7): loops appear and disappear with motion.

Simulates a walk between two sparse locations of OP_A's area A6 and
reports how the 5G ON/OFF pattern changes along the way, then compares
against stationary runs at the two endpoints.

Run:  python examples/walking_tour.py
"""

from repro.campaign import build_deployment, device, operator
from repro.campaign.locations import sparse_locations, walking_path
from repro.campaign.runner import run_once
from repro.core.cellset import five_g_timeline


def main() -> None:
    profile = operator("OP_A")
    deployment = build_deployment(profile, "A6")
    phone = device("OnePlus 12R")
    area = profile.area_spec("A6").area
    points = sparse_locations(area, 10, seed=5)
    start, end = points[0], points[1]

    for label, point in (("start", start), ("end", end)):
        stationary = run_once(deployment, profile, phone, point, label, 0,
                              duration_s=300)
        print(f"stationary at {label}: loop = "
              f"{stationary.analysis.detection.kind.value}"
              + (f" ({stationary.analysis.subtype.value})"
                 if stationary.has_loop else ""))

    duration = 420
    provider = walking_path(start, end, duration, speed_m_s=1.4)
    walk = run_once(deployment, profile, phone, start, "walk", 0,
                    duration_s=duration, point_provider=provider)
    print(f"\nwalking {start.distance_to(end):.0f} m "
          f"({duration}s at 1.4 m/s): loop = {walk.analysis.detection.kind.value}")
    print("5G ON/OFF segments while walking:")
    for on, seg_start, seg_end in five_g_timeline(walk.analysis.intervals):
        state = "ON " if on else "OFF"
        print(f"  {seg_start:6.1f}s - {seg_end:6.1f}s  5G {state}")


if __name__ == "__main__":
    main()
