"""Quickstart: observe one 5G ON-OFF loop, end to end.

Simulates one 5-minute stationary speed test with OP_T (5G SA) on a
OnePlus 12R at a location with a loop, then runs the paper's analysis
pipeline on the captured signaling trace: serving cell set sequence,
loop detection, sub-type classification, and performance impact —
the reproduction of the paper's motivating example (Figures 1 and 3).

Run:  python examples/quickstart.py
"""

from repro.campaign import build_deployment, device, operator
from repro.campaign.locations import sparse_locations
from repro.campaign.runner import run_once
from repro.core.cellset import five_g_timeline


def find_loop_run(profile, deployment, phone):
    """Try candidate locations until a persistent loop shows up."""
    for index, point in enumerate(sparse_locations(profile.areas[0].area, 30, seed=7)):
        result = run_once(deployment, profile, phone, point, f"P{index + 1}",
                          run_index=0, duration_s=300, keep_trace=True)
        if result.has_loop:
            return result
    raise RuntimeError("no loop found — try more locations")


def main() -> None:
    profile = operator("OP_T")
    deployment = build_deployment(profile, "A1")
    phone = device("OnePlus 12R")

    result = find_loop_run(profile, deployment, phone)
    analysis = result.analysis

    print(f"location {result.metadata.location}: "
          f"{analysis.detection.kind.value} loop, sub-type {analysis.subtype.value}")
    print(f"loop block ({analysis.detection.period} cell sets, "
          f"repeats x{analysis.detection.repetitions}):")
    for cellset in analysis.detection.block:
        state = "5G ON " if cellset.five_g_on else "5G OFF"
        print(f"  [{state}] {cellset}")

    print("\n5G ON/OFF timeline (first 2 minutes):")
    for on, start, end in five_g_timeline(analysis.intervals):
        if start > 120:
            break
        state = "ON " if on else "OFF"
        print(f"  {start:6.1f}s - {end:6.1f}s  5G {state}")

    performance = analysis.performance
    print(f"\nmedian download speed: {performance.median_on_mbps:.0f} Mbps (5G ON) "
          f"vs {performance.median_off_mbps:.0f} Mbps (5G OFF)")
    cycles = analysis.cycles
    if cycles:
        mean_cycle = sum(c.cycle_s for c in cycles) / len(cycles)
        mean_off = sum(c.off_s for c in cycles) / len(cycles)
        print(f"{len(cycles)} ON-OFF cycles, mean cycle {mean_cycle:.0f}s, "
              f"mean OFF {mean_off:.0f}s")


if __name__ == "__main__":
    main()
