"""A miniature reality check (section 4) across all three operators.

Runs a scaled-down measurement campaign (fewer locations/runs than the
paper's Table 3) and prints the Figure 6 loop ratios, the Figure 16
sub-type breakdown, and the Figure 10 cycle statistics.

Run:  python examples/campaign_survey.py
"""

from repro.analysis import figures
from repro.campaign import CampaignConfig, CampaignRunner, OPERATORS


def main() -> None:
    config = CampaignConfig(a1_locations=8, a1_runs_per_location=4,
                            locations_per_area=6, runs_per_location=4,
                            duration_s=300)
    runner = CampaignRunner(list(OPERATORS.values()), config)
    print("running campaign (this takes a minute or two)...")
    result = runner.run()

    print(f"\n{len(result)} runs at {len(result.locations)} locations")
    print("\nFigure 6 — loop ratio per operator:")
    for operator, ratios in figures.fig6_loop_ratio(result).items():
        print(f"  {operator}: no-loop {ratios['I']:.0%}, "
              f"persistent {ratios['II-P']:.0%}, "
              f"semi-persistent {ratios['II-SP']:.0%}")

    print("\nFigure 16 — loop sub-type breakdown per area:")
    for area, breakdown in figures.fig16_breakdown(result).items():
        shares = ", ".join(f"{name} {share:.0%}"
                           for name, share in sorted(breakdown.items()))
        print(f"  {area}: {shares or 'no loops'}")

    print("\nFigure 10 — ON-OFF cycle statistics per operator:")
    for operator, summaries in figures.fig10_off_time(result).items():
        cycle = summaries["cycle_s"]
        off = summaries["off_s"]
        print(f"  {operator}: median cycle {cycle.median:.0f}s, "
              f"median OFF {off.median:.1f}s "
              f"({summaries['off_ratio'].median:.0%} of the cycle)")


if __name__ == "__main__":
    main()
