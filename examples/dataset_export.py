"""Export a campaign as a released-style dataset (CSV + NSG text logs).

Emulates the paper's artifact release: per-run / per-cycle /
per-transition CSV tables plus Network-Signal-Guru-style raw logs for
the loop runs, written to ``./dataset_export/``.

Run:  python examples/dataset_export.py
"""

from pathlib import Path

from repro.analysis.export import export_dataset
from repro.campaign import CampaignConfig, CampaignRunner, operator
from repro.traces.nsg_format import render_trace


def main() -> None:
    target = Path("dataset_export")
    config = CampaignConfig(area_names=["A6"], locations_per_area=5,
                            runs_per_location=3, duration_s=300,
                            keep_traces=True)
    print("running a small OP_A campaign...")
    result = CampaignRunner([operator("OP_A")], config).run()

    paths = export_dataset(result, target)
    for name, path in paths.items():
        lines = path.read_text().count("\n") - 1
        print(f"wrote {path} ({lines} rows)")

    logs_dir = target / "nsg_logs"
    logs_dir.mkdir(exist_ok=True)
    exported = 0
    for index, run in enumerate(result.runs):
        if not run.has_loop or run.trace is None:
            continue
        name = (f"{run.metadata.location}_run{index}"
                f"_{run.analysis.subtype.value}.txt")
        (logs_dir / name).write_text(render_trace(run.trace),
                                     encoding="utf-8")
        exported += 1
    print(f"wrote {exported} NSG-style raw logs to {logs_dir}/")
    print(f"\nloop ratio in this export: {result.loop_ratio():.0%}")


if __name__ == "__main__":
    main()
