"""Calibration harness: loop statistics per operator across all areas."""
import sys, time
import numpy as np
from repro.campaign import CampaignConfig, CampaignRunner, operator
from repro.core.loops import LoopKind

ops = sys.argv[1:] or ["OP_T", "OP_A", "OP_V"]
# Monotonic, not wall clock: immune to NTP steps, can't go negative.
t0 = time.monotonic()
for name in ops:
    cfg = CampaignConfig(a1_locations=10, a1_runs_per_location=4,
                         locations_per_area=8, runs_per_location=4, duration_s=300)
    res = CampaignRunner([operator(name)], cfg).run()
    kinds = res.loop_kind_ratios()
    print(f"== {name}: runs={len(res)} loop={res.loop_ratio():.2f} "
          f"P={kinds[LoopKind.PERSISTENT]:.2f} SP={kinds[LoopKind.SEMI_PERSISTENT]:.2f}")
    print("   subtypes:", {k.value: round(v,2) for k,v in sorted(res.subtype_breakdown().items(), key=lambda kv: kv[0].value)})
    for area in res.areas:
        sub = res.for_area(area)
        print(f"   {area}: loop={sub.loop_ratio():.2f}", {k.value: round(v,2) for k,v in sorted(sub.subtype_breakdown().items(), key=lambda kv: kv[0].value)})
    cycles = res.all_cycles()
    if cycles:
        ct = [c.cycle_s for c in cycles]; ot=[c.off_s for c in cycles]; orat=[c.off_ratio for c in cycles]
        print(f"   cycles: n={len(ct)} med_cycle={np.median(ct):.0f}s med_off={np.median(ot):.1f}s med_offratio={np.median(orat):.2f}")
    perf_on=[]; perf_off=[]
    for run in res.runs:
        if run.has_loop:
            p = run.analysis.performance
            if p.on_speed_samples: perf_on.append(p.median_on_mbps)
            if p.off_speed_samples: perf_off.append(p.median_off_mbps)
    if perf_on:
        print(f"   speed: med_ON={np.median(perf_on):.1f} med_OFF={np.median(perf_off):.1f} Mbps")
print("elapsed", round(time.monotonic()-t0,1))
