"""Diagnose fig21: dense-study correlations and fitted model."""
import numpy as np
from repro.campaign import build_deployment, device, operator
from repro.campaign.locations import dense_grid_locations, sparse_locations
from repro.campaign.operators import OP_T_PROBLEM_CHANNEL
from repro.campaign.runner import loop_probability_at, run_once
from repro.core.prediction import extract_location_features, fit_s1e3_model
from repro.analysis.stats import spearman

profile = operator("OP_T")
deployment = build_deployment(profile, "A1")
phone = device("OnePlus 12R")
area = profile.areas[0].area

anchor = None
for index, point in enumerate(sparse_locations(area, 40, seed=7)):
    result = run_once(deployment, profile, phone, point, f"S{index}", 0, duration_s=300)
    if result.has_loop and result.analysis.subtype.value == "S1E3":
        anchor = point; break
print("anchor", anchor)
points = dense_grid_locations(anchor, area, half_extent_m=150.0, spacing_m=75.0)
feats, obs = [], []
for i, p in enumerate(points):
    pr = loop_probability_at(deployment, profile, phone, p, f"D{i}", n_runs=4, duration_s=240, subtype_value="S1E3")
    f = extract_location_features(deployment.environment, profile.policy, phone, p, OP_T_PROBLEM_CHANNEL)
    feats.append(f); obs.append(pr)
    best = max(f, key=lambda c: c.pcell_gap_db) if f else None
    print(f" D{i}: P={pr:.2f} gaps={[(round(c.pcell_gap_db,1), round(c.scell_gap_db,1)) for c in f]}")
gaps = [max(f, key=lambda c: c.pcell_gap_db).scell_gap_db for f in feats if f]
probs = [p for f, p in zip(feats, obs) if f]
print("spearman(scellgap, P):", spearman(gaps, probs))
m = fit_s1e3_model(feats, obs)
print("fitted k,t,n:", m.k, m.t, m.n)
