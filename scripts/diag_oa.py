"""Why do OP_A locations not loop? Inspect per-location state sequences."""
from collections import Counter
from repro.campaign import operator, build_deployment
from repro.campaign.devices import device
from repro.campaign.locations import sparse_locations
from repro.campaign.runner import run_once
from repro.cells.cell import Rat
from repro.core.cellset import five_g_timeline

prof = operator("OP_A")
spec = prof.areas[0]
dep = build_deployment(prof, spec.name)
env = dep.environment
pts = sparse_locations(spec.area, 10, seed=3)
for i, pt in enumerate(pts):
    res = run_once(dep, prof, device("OnePlus 12R"), pt, f"L{i}", 0, duration_s=300, keep_trace=True)
    ints = res.analysis.intervals
    tl = five_g_timeline(ints)
    on_time = sum(e-s for on,s,e in tl if on)
    lte_best = sorted([(round(env.propagation.mean_rsrp_dbm(c, pt),1), c.identity.channel) for c in env.cells_of_rat(Rat.LTE)], reverse=True)[:3]
    nr_best = sorted([round(env.propagation.mean_rsrp_dbm(c, pt),1) for c in env.cells_of_rat(Rat.NR)], reverse=True)[:2]
    seq = [str(iv.cellset) for iv in ints]
    print(f"L{i}: {res.analysis.detection.kind.value}/{res.analysis.subtype.value} on={on_time:.0f}s nseq={len(seq)} lte={lte_best} nr={nr_best}")
    if len(seq) <= 8:
        for s in seq: print("   ", s)
    else:
        print("    first:", seq[:4]); print("    uniq:", len(set(seq)))
