"""F5/F6 check: loops per device; OP_V per-subtype OFF times."""
import numpy as np
from repro.campaign import CampaignConfig, CampaignRunner, operator
from repro.campaign.devices import DEVICES

for opname in ("OP_T", "OP_A", "OP_V"):
    print("==", opname)
    for dev in DEVICES:
        cfg = CampaignConfig(device_name=dev, area_names=[operator(opname).areas[0].name],
                             a1_locations=5, a1_runs_per_location=3,
                             locations_per_area=5, runs_per_location=3, duration_s=300)
        res = CampaignRunner([operator(opname)], cfg).run()
        on_any = sum(1 for r in res.runs for iv in r.analysis.intervals if iv.cellset.five_g_on)
        print(f"  {dev:15s} loop={res.loop_ratio():.2f} (5G ever on in {sum(1 for r in res.runs if any(iv.cellset.five_g_on for iv in r.analysis.intervals))}/{len(res)} runs)")
# OP_V off times per subtype
from repro.core.classify import LoopSubtype
cfg = CampaignConfig(locations_per_area=8, runs_per_location=4, duration_s=300)
res = CampaignRunner([operator("OP_V")], cfg).run()
for st, cycles in res.cycles_by_subtype().items():
    offs = [c.off_s for c in cycles]
    print("OP_V", st.value, "n=", len(offs), "off quartiles:", np.percentile(offs, [25,50,75,90]).round(1))
