"""Diagnostic: inspect NSA run internals for calibration."""
import numpy as np
from collections import Counter
from repro.campaign import operator, build_deployment
from repro.campaign.devices import device
from repro.campaign.locations import sparse_locations
from repro.campaign.runner import run_once
from repro.cells.cell import Rat
from repro.traces.records import (ScgFailureRecord, RrcReconfigurationRecord,
                                  RrcReestablishmentRequestRecord)

for opname in ("OP_A", "OP_V"):
    prof = operator(opname)
    spec = prof.areas[0]
    dep = build_deployment(prof, spec.name)
    pts = sparse_locations(spec.area, 8, seed=1)
    env = dep.environment
    print("=====", opname, "cells:", len(env.cells))
    ev = Counter()
    for i, pt in enumerate(pts):
        # radio snapshot
        nr = sorted([env.propagation.mean_rsrp_dbm(c, pt) for c in env.cells_of_rat(Rat.NR)], reverse=True)[:3]
        lte_best = sorted([(round(env.propagation.mean_rsrp_dbm(c, pt),1), c.identity.channel) for c in env.cells_of_rat(Rat.LTE)], reverse=True)[:4]
        res = run_once(dep, prof, device("OnePlus 12R"), pt, f"L{i}", 0, duration_s=200, keep_trace=True)
        tr = res.trace
        n_scgfail = len(tr.of_kind(ScgFailureRecord))
        n_ho = sum(1 for r in tr.of_kind(RrcReconfigurationRecord) if r.is_handover)
        n_scgadd = sum(1 for r in tr.of_kind(RrcReconfigurationRecord) if r.adds_scg)
        n_rel = sum(1 for r in tr.of_kind(RrcReconfigurationRecord) if r.release_scg)
        n_reest = len(tr.of_kind(RrcReestablishmentRequestRecord))
        print(f" L{i}: NRtop={['%.0f'%v for v in nr]} LTEtop={lte_best}")
        print(f"     loop={res.analysis.detection.kind.value} sub={res.analysis.subtype.value} ho={n_ho} scg_add={n_scgadd} scg_fail={n_scgfail} scg_rel={n_rel} reest={n_reest}")
